//! Seeded, deterministic fault injection for archived leaf matrices.
//!
//! The production archive path ("trillions of packets at LBNL") must
//! survive storage realities: truncated objects, flipped bits, missing
//! leaves, and reads that fail once and succeed on retry. This module
//! turns those realities into a reproducible test instrument: a
//! [`FaultPlan`] is a pure function of `(seed, rate)` that assigns at most
//! one [`Fault`] to each leaf of a [`WindowArchive`], and
//! [`FaultPlan::apply`] wraps the archive in a [`FaultyArchive`] whose
//! [`LeafSource`] reads misbehave exactly as planned:
//!
//! * [`Fault::Truncate`] — the stored leaf loses its tail; every decode
//!   sees a short read (transient *class*, but persistent — the recovery
//!   layer retries it into quarantine).
//! * [`Fault::BitFlip`] — one bit past the magic flips; the v2 CRC (or
//!   length prefix) catches it, a permanent fault.
//! * [`Fault::Drop`] — the leaf is gone; reads fail permanently.
//! * [`Fault::TransientRead`] — the first `failures` reads fail
//!   transiently, then the clean bytes come back: the scheduled-recovery
//!   case bounded retry must win.
//!
//! Determinism is load-bearing: the differential suite in
//! `tests/fault_recovery.rs` replays plans by seed and asserts the restore
//! is byte-identical across runs.

use crate::archive::{LeafFault, LeafSource, WindowArchive};
use obscor_hypersparse::spill::{SpillFault, SpillMedium};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// The concrete fault assigned to one leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Keep only the first `keep` bytes of the encoded leaf.
    Truncate {
        /// Bytes preserved from the front of the encoding.
        keep: usize,
    },
    /// XOR `mask` into the byte at `offset` (always past the magic).
    BitFlip {
        /// Byte offset of the flip.
        offset: usize,
        /// Single-bit mask applied at `offset`.
        mask: u8,
    },
    /// The leaf is missing from the store.
    Drop,
    /// The first `failures` reads fail transiently, then reads succeed.
    TransientRead {
        /// Number of reads that fail before recovery.
        failures: u32,
    },
}

impl Fault {
    /// Whether bounded retry can ever recover this fault.
    pub fn is_recoverable(&self) -> bool {
        matches!(self, Fault::TransientRead { .. })
    }
}

/// Fault families a plan draws from (see [`FaultPlan::with_kinds`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Tail truncation of the stored bytes.
    Truncate,
    /// A single bit flip past the magic.
    BitFlip,
    /// Missing leaf.
    Drop,
    /// Transient read failures with scheduled recovery.
    TransientRead,
}

/// All fault families, the default menu.
pub const ALL_FAULT_KINDS: [FaultKind; 4] =
    [FaultKind::Truncate, FaultKind::BitFlip, FaultKind::Drop, FaultKind::TransientRead];

/// A seeded, deterministic assignment of faults to archive leaves.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the per-leaf derivation stream.
    pub seed: u64,
    /// Probability that any given leaf is faulted, in `[0, 1]`.
    pub rate: f64,
    /// Fault families this plan draws from (never empty).
    kinds: Vec<FaultKind>,
}

impl FaultPlan {
    /// A plan drawing uniformly from every fault family.
    pub fn new(seed: u64, rate: f64) -> Result<FaultPlan, String> {
        FaultPlan::with_kinds(seed, rate, &ALL_FAULT_KINDS)
    }

    /// A plan restricted to the given fault families (for targeted tests:
    /// e.g. transient-only plans must recover completely).
    pub fn with_kinds(seed: u64, rate: f64, kinds: &[FaultKind]) -> Result<FaultPlan, String> {
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("fault rate {rate} outside [0, 1]"));
        }
        if kinds.is_empty() {
            return Err("fault plan needs at least one fault kind".into());
        }
        Ok(FaultPlan { seed, rate, kinds: kinds.to_vec() })
    }

    /// Parse the CLI form `SEED:RATE` (e.g. `7:0.25`).
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let (seed, rate) = text
            .split_once(':')
            .ok_or_else(|| format!("fault plan `{text}` is not SEED:RATE"))?;
        let seed: u64 =
            seed.trim().parse().map_err(|_| format!("bad fault-plan seed `{seed}`"))?;
        let rate: f64 =
            rate.trim().parse().map_err(|_| format!("bad fault-plan rate `{rate}`"))?;
        FaultPlan::new(seed, rate)
    }

    /// The fault (if any) this plan assigns to leaf `index` of a leaf
    /// whose encoding is `leaf_len` bytes long. Pure in
    /// `(seed, rate, kinds, index, leaf_len)`.
    pub fn fault_for(&self, index: usize, leaf_len: usize) -> Option<Fault> {
        let h = splitmix64(self.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Top 53 bits → uniform in [0, 1): the draw against `rate`.
        let draw = (h >> 11) as f64 / (1u64 << 53) as f64;
        if draw >= self.rate {
            return None;
        }
        let h2 = splitmix64(h);
        let h3 = splitmix64(h2);
        let kind = self.kinds[mod_idx(h2, self.kinds.len())];
        Some(match kind {
            FaultKind::Truncate => {
                // Keep 0..=90% of the bytes: always strictly shorter than
                // the declared layout, so decode reports a short read.
                let keep = leaf_len * mod_idx(h3, 91) / 100;
                Fault::Truncate { keep }
            }
            FaultKind::BitFlip => {
                // Flip past the 8 magic bytes so the fault lands in the
                // CRC-protected region and classifies as permanent (a
                // magic flip would also be permanent, but could collide
                // with the v1 magic and dodge the CRC entirely).
                let span = leaf_len.saturating_sub(8).max(1);
                Fault::BitFlip { offset: 8 + mod_idx(h3, span), mask: 1 << (h3 % 8) }
            }
            FaultKind::Drop => Fault::Drop,
            FaultKind::TransientRead => {
                // 1..=2 failures: within any sane retry budget, so the
                // scheduled recovery is always reachable.
                Fault::TransientRead { failures: 1 + u32::from(!h3.is_multiple_of(2)) }
            }
        })
    }

    /// The full assignment over an archive, leaf by leaf.
    pub fn assignments(&self, archive: &WindowArchive) -> Vec<Option<Fault>> {
        archive
            .leaves
            .iter()
            .enumerate()
            .map(|(i, leaf)| self.fault_for(i, leaf.len()))
            .collect()
    }

    /// Wrap `archive` in a leaf source that misbehaves per this plan,
    /// counting every injected fault in the metrics registry.
    pub fn apply<'a>(&self, archive: &'a WindowArchive) -> FaultyArchive<'a> {
        let injected = obscor_obs::counter("telescope.faults.injected_total");
        let states: Vec<LeafState> = self
            .assignments(archive)
            .into_iter()
            .zip(&archive.leaves)
            .map(|(fault, bytes)| match fault {
                None => LeafState::Clean,
                Some(f) => {
                    injected.inc();
                    obscor_obs::counter(kind_counter(&f)).inc();
                    match f {
                        Fault::Truncate { keep } => {
                            LeafState::Corrupted(bytes[..keep.min(bytes.len())].to_vec())
                        }
                        Fault::BitFlip { offset, mask } => {
                            let mut b = bytes.clone();
                            if let Some(byte) = b.get_mut(offset) {
                                *byte ^= mask;
                            }
                            LeafState::Corrupted(b)
                        }
                        Fault::Drop => LeafState::Missing,
                        Fault::TransientRead { failures } => {
                            LeafState::Flaky { remaining: AtomicU32::new(failures) }
                        }
                    }
                }
            })
            .collect();
        FaultyArchive { base: archive, states }
    }
}

/// Metric name for one injected fault kind.
fn kind_counter(f: &Fault) -> &'static str {
    match f {
        Fault::Truncate { .. } => "telescope.faults.truncate_total",
        Fault::BitFlip { .. } => "telescope.faults.bitflip_total",
        Fault::Drop => "telescope.faults.drop_total",
        Fault::TransientRead { .. } => "telescope.faults.transient_total",
    }
}

/// SplitMix64: the derivation PRF behind every per-leaf decision.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `h mod n` as a usize index (`n` is a small in-memory length).
fn mod_idx(h: u64, n: usize) -> usize {
    usize::try_from(h % (n.max(1) as u64)).unwrap_or(0)
}

/// What one leaf of a [`FaultyArchive`] does when read.
#[derive(Debug)]
enum LeafState {
    /// Read passes through to the base archive.
    Clean,
    /// Read returns these (truncated / bit-flipped) bytes.
    Corrupted(Vec<u8>),
    /// Read fails permanently.
    Missing,
    /// The next `remaining` reads fail transiently, then clean bytes.
    Flaky {
        /// Failures left before the read recovers.
        remaining: AtomicU32,
    },
}

/// A [`WindowArchive`] seen through a [`FaultPlan`]: the leaf store the
/// recovering restore is tested against.
#[derive(Debug)]
pub struct FaultyArchive<'a> {
    base: &'a WindowArchive,
    states: Vec<LeafState>,
}

impl FaultyArchive<'_> {
    /// Number of leaves carrying an injected fault.
    pub fn n_faulted(&self) -> usize {
        self.states.iter().filter(|s| !matches!(s, LeafState::Clean)).count()
    }
}

impl LeafSource for FaultyArchive<'_> {
    fn label(&self) -> &str {
        &self.base.label
    }

    fn n_leaves(&self) -> usize {
        self.base.leaves.len()
    }

    fn expected_packets(&self) -> u64 {
        self.base.total_packets
    }

    fn read_leaf(&self, index: usize) -> Result<Cow<'_, [u8]>, LeafFault> {
        let (state, bytes) = match (self.states.get(index), self.base.leaves.get(index)) {
            (Some(s), Some(b)) => (s, b),
            _ => return Err(LeafFault::Missing),
        };
        match state {
            LeafState::Clean => Ok(Cow::Borrowed(bytes.as_slice())),
            LeafState::Corrupted(c) => Ok(Cow::Borrowed(c.as_slice())),
            LeafState::Missing => Err(LeafFault::Missing),
            LeafState::Flaky { remaining } => {
                // Deterministic schedule: each failed read consumes one
                // budgeted failure, so the k-th retry succeeds no matter
                // how reads interleave across leaves.
                let stole = remaining
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |r| r.checked_sub(1)) // ordering: budget decrement is commutative; the schedule depends on the count, not on cross-thread order
                    .is_ok();
                if stole {
                    Err(LeafFault::TransientRead)
                } else {
                    Ok(Cow::Borrowed(bytes.as_slice()))
                }
            }
        }
    }
}

/// A [`SpillMedium`] seen through a [`FaultPlan`]: the slot id plays the
/// leaf-index role, so `plan.fault_for(slot, frame_len)` decides — purely
/// and reproducibly — how each spill-frame read misbehaves. Writes pass
/// through untouched; corruption is applied on every fetch, which keeps
/// the injection deterministic even though slots are allocated lazily as
/// the accumulator evicts.
///
/// Transient budgets are charged lazily per slot (first faulted read
/// seeds the budget, each failure consumes one), mirroring
/// [`FaultyArchive`]'s deterministic recovery schedule.
#[derive(Debug)]
pub struct FaultyMedium<M: SpillMedium> {
    inner: M,
    plan: FaultPlan,
    /// Remaining transient failures per slot, seeded on first read.
    flaky: Mutex<BTreeMap<u64, u32>>,
}

impl<M: SpillMedium> FaultyMedium<M> {
    /// Wrap `inner` so reads misbehave per `plan`.
    pub fn new(inner: M, plan: FaultPlan) -> Self {
        Self { inner, plan, flaky: Mutex::new(BTreeMap::new()) }
    }

    /// Internal consistency: the plan's rate is a probability.
    pub fn check_invariants(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.plan.rate) {
            return Err(format!("fault rate {} outside [0, 1]", self.plan.rate));
        }
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<u64, u32>> {
        self.flaky.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<M: SpillMedium> SpillMedium for FaultyMedium<M> {
    fn label(&self) -> String {
        format!("faulty({})", self.inner.label())
    }

    fn store(&self, slot: u64, bytes: &[u8]) -> Result<(), SpillFault> {
        self.inner.store(slot, bytes)
    }

    fn fetch(&self, slot: u64) -> Result<Vec<u8>, SpillFault> {
        let bytes = self.inner.fetch(slot)?;
        let index = usize::try_from(slot).unwrap_or(usize::MAX);
        match self.plan.fault_for(index, bytes.len()) {
            None => Ok(bytes),
            Some(Fault::Truncate { keep }) => {
                let mut b = bytes;
                b.truncate(keep.min(b.len()));
                Ok(b)
            }
            Some(Fault::BitFlip { offset, mask }) => {
                let mut b = bytes;
                if let Some(byte) = b.get_mut(offset) {
                    *byte ^= mask;
                }
                Ok(b)
            }
            Some(Fault::Drop) => Err(SpillFault::Missing),
            Some(Fault::TransientRead { failures }) => {
                let mut budgets = self.lock();
                let remaining = budgets.entry(slot).or_insert(failures);
                if *remaining > 0 {
                    *remaining -= 1;
                    Err(SpillFault::TransientRead)
                } else {
                    Ok(bytes)
                }
            }
        }
    }

    fn discard(&self, slot: u64) {
        self.inner.discard(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::archive_window;
    use crate::capture::capture_window;
    use obscor_netmodel::Scenario;

    fn archive() -> WindowArchive {
        let s = Scenario::paper_scaled(1 << 12, 3);
        archive_window(&capture_window(&s, &s.caida_windows[0]), 16)
    }

    #[test]
    fn parse_accepts_seed_rate() {
        let p = FaultPlan::parse("7:0.25").unwrap();
        assert_eq!(p.seed, 7);
        assert!((p.rate - 0.25).abs() < 1e-12);
        assert!(FaultPlan::parse("7").is_err());
        assert!(FaultPlan::parse("x:0.5").is_err());
        assert!(FaultPlan::parse("7:1.5").is_err());
        assert!(FaultPlan::parse("7:-0.1").is_err());
    }

    #[test]
    fn zero_rate_assigns_nothing_full_rate_everything() {
        let a = archive();
        let none = FaultPlan::new(1, 0.0).unwrap().assignments(&a);
        assert!(none.iter().all(Option::is_none));
        let all = FaultPlan::new(1, 1.0).unwrap().assignments(&a);
        assert!(all.iter().all(Option::is_some));
    }

    #[test]
    fn assignments_are_deterministic_in_the_seed() {
        let a = archive();
        let p = FaultPlan::new(99, 0.5).unwrap();
        assert_eq!(p.assignments(&a), p.assignments(&a));
        let q = FaultPlan::new(100, 0.5).unwrap();
        assert_ne!(p.assignments(&a), q.assignments(&a), "different seeds, same plan");
    }

    #[test]
    fn restricted_menu_only_draws_those_kinds() {
        let a = archive();
        let p = FaultPlan::with_kinds(5, 1.0, &[FaultKind::TransientRead]).unwrap();
        for f in p.assignments(&a).into_iter().flatten() {
            assert!(matches!(f, Fault::TransientRead { .. }));
        }
    }

    #[test]
    fn flaky_leaf_recovers_on_schedule() {
        let a = archive();
        let p = FaultPlan::with_kinds(5, 1.0, &[FaultKind::TransientRead]).unwrap();
        let faulty = p.apply(&a);
        assert_eq!(faulty.n_faulted(), a.n_leaves());
        let failures = match p.fault_for(0, a.leaves[0].len()) {
            Some(Fault::TransientRead { failures }) => failures,
            other => panic!("expected transient fault, got {other:?}"),
        };
        for _ in 0..failures {
            assert_eq!(faulty.read_leaf(0), Err(LeafFault::TransientRead));
        }
        assert_eq!(faulty.read_leaf(0).unwrap().as_ref(), a.leaves[0].as_slice());
    }

    #[test]
    fn out_of_range_leaf_is_missing_not_a_panic() {
        let a = archive();
        let faulty = FaultPlan::new(1, 0.0).unwrap().apply(&a);
        assert_eq!(faulty.read_leaf(10_000), Err(LeafFault::Missing));
    }

    #[test]
    fn clean_faulty_medium_passes_bytes_through() {
        use obscor_hypersparse::MemMedium;
        let m = FaultyMedium::new(MemMedium::new(), FaultPlan::new(1, 0.0).unwrap());
        m.check_invariants().unwrap();
        assert_eq!(m.label(), "faulty(mem)");
        m.store(3, &[1, 2, 3]).unwrap();
        assert_eq!(m.fetch(3).unwrap(), vec![1, 2, 3]);
        m.discard(3);
        assert_eq!(m.fetch(3), Err(SpillFault::Missing));
    }

    #[test]
    fn faulty_medium_matches_the_plan_per_slot() {
        use obscor_hypersparse::MemMedium;
        let plan = FaultPlan::new(7, 1.0).unwrap();
        let m = FaultyMedium::new(MemMedium::new(), plan.clone());
        let payload: Vec<u8> = (0..64).collect();
        for slot in 0u64..16 {
            m.store(slot, &payload).unwrap();
            let idx = usize::try_from(slot).unwrap();
            match plan.fault_for(idx, payload.len()) {
                None => assert_eq!(m.fetch(slot).unwrap(), payload),
                Some(Fault::Truncate { keep }) => {
                    assert_eq!(m.fetch(slot).unwrap(), payload[..keep.min(payload.len())]);
                }
                Some(Fault::BitFlip { offset, mask }) => {
                    let mut want = payload.clone();
                    if let Some(b) = want.get_mut(offset) {
                        *b ^= mask;
                    }
                    assert_eq!(m.fetch(slot).unwrap(), want);
                }
                Some(Fault::Drop) => assert_eq!(m.fetch(slot), Err(SpillFault::Missing)),
                Some(Fault::TransientRead { failures }) => {
                    for _ in 0..failures {
                        assert_eq!(m.fetch(slot), Err(SpillFault::TransientRead));
                    }
                    assert_eq!(m.fetch(slot).unwrap(), payload, "recovers after budget");
                }
            }
        }
    }
}
