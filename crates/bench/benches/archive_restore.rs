//! Archive-path bench: leaf serialization with the CRC-protected codec
//! v2 and the two restore shapes — fail-stop versus recovering — at
//! varying leaf counts, plus a degraded restore under a seeded fault
//! plan (the retry/quarantine overhead the pipeline pays per window).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use obscor_netmodel::Scenario;
use obscor_telescope::{
    archive_window, capture_window, restore_matrix, FaultPlan, RecoveringRestore,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let nv = 1 << 15;
    let s = Scenario::paper_scaled(nv, 42);
    let w = capture_window(&s, &s.caida_windows[0]);

    let mut g = c.benchmark_group("archive_restore");
    g.sample_size(10);
    g.throughput(Throughput::Elements(nv as u64));

    for n_leaves in [8usize, 64] {
        g.bench_function(format!("archive_{n_leaves}_leaves"), |b| {
            b.iter(|| black_box(archive_window(&w, n_leaves)))
        });
        let archive = archive_window(&w, n_leaves);
        g.bench_function(format!("restore_failstop_{n_leaves}_leaves"), |b| {
            b.iter(|| black_box(restore_matrix(&archive).unwrap()))
        });
        g.bench_function(format!("restore_recovering_{n_leaves}_leaves"), |b| {
            b.iter(|| black_box(RecoveringRestore::default().restore(&archive)))
        });
    }

    // Degraded restore: 30% of 64 leaves faulted; measures injection +
    // retry + quarantine accounting on top of the decode/merge work.
    let archive = archive_window(&w, 64);
    let plan = FaultPlan::new(7, 0.3).unwrap();
    g.bench_function("restore_recovering_64_leaves_faulted", |b| {
        b.iter(|| black_box(RecoveringRestore::default().restore(&plan.apply(&archive))))
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
