//! Confidence intervals for measured fractions.
//!
//! Every point in Figs 4-6 is a binomial proportion (sources detected /
//! sources in bin); the Wilson score interval gives calibrated error bars
//! even for the small, near-0/near-1 counts at the bright end — exactly
//! where the naive Wald interval collapses.

/// A two-sided confidence interval on a proportion.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    /// Lower bound (≥ 0).
    pub lo: f64,
    /// Upper bound (≤ 1).
    pub hi: f64,
}

impl Interval {
    /// Interval half-width.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether a value lies inside the interval.
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }
}

/// The Wilson score interval for `successes` out of `trials` at the given
/// normal quantile `z` (1.96 ≈ 95 %).
///
/// # Panics
/// Panics if `trials == 0`, `successes > trials`, or `z <= 0`.
pub fn wilson(successes: u64, trials: u64, z: f64) -> Interval {
    assert!(trials > 0, "Wilson interval needs at least one trial");
    assert!(successes <= trials, "successes exceed trials");
    assert!(z > 0.0, "z must be positive");
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let margin = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    Interval { lo: (center - margin).max(0.0), hi: (center + margin).min(1.0) }
}

/// [`wilson`] at 95 % confidence.
pub fn wilson95(successes: u64, trials: u64) -> Interval {
    wilson(successes, trials, 1.959_963_984_540_054)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_value() {
        // 8/10 at 95%: Wilson gives roughly (0.49, 0.94).
        let iv = wilson95(8, 10);
        assert!((iv.lo - 0.49).abs() < 0.01, "lo {}", iv.lo);
        assert!((iv.hi - 0.943).abs() < 0.01, "hi {}", iv.hi);
    }

    #[test]
    fn extremes_stay_in_unit_interval() {
        let zero = wilson95(0, 20);
        assert_eq!(zero.lo, 0.0);
        assert!(zero.hi > 0.0 && zero.hi < 0.25);
        let all = wilson95(20, 20);
        assert_eq!(all.hi, 1.0);
        assert!(all.lo > 0.75 && all.lo < 1.0);
    }

    #[test]
    fn interval_shrinks_with_trials() {
        let small = wilson95(5, 10);
        let large = wilson95(500, 1000);
        assert!(large.half_width() < small.half_width());
    }

    #[test]
    fn covers_the_point_estimate() {
        for (s, n) in [(0u64, 5u64), (1, 7), (3, 9), (9, 9), (50, 100)] {
            let iv = wilson95(s, n);
            assert!(iv.contains(s as f64 / n as f64), "{s}/{n}");
        }
    }

    #[test]
    fn higher_confidence_is_wider() {
        let ninety = wilson(30, 100, 1.6449);
        let ninety_nine = wilson(30, 100, 2.5758);
        assert!(ninety_nine.half_width() > ninety.half_width());
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        let _ = wilson95(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn impossible_counts_panic() {
        let _ = wilson95(5, 3);
    }
}
