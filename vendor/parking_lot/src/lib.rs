//! Offline stand-in for `parking_lot`.
//!
//! Wraps [`std::sync`] primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly (a poisoned std lock is recovered,
//! matching parking_lot's behaviour of not propagating panics as poison).

#![forbid(unsafe_code)]

use std::sync;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex (usable in `static` initialisers).
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consume the mutex and return its value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<sync::MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock (usable in `static` initialisers).
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    static CELL: Mutex<Option<u32>> = Mutex::new(None);

    #[test]
    fn static_mutex_works() {
        *CELL.lock() = Some(5);
        assert_eq!(*CELL.lock(), Some(5));
    }
}
