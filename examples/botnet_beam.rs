//! The drifting beam: watch a botnet cohort appear, persist, and drift
//! out of view across the 15-month span — the mechanism behind the
//! paper's modified-Cauchy temporal correlation.
//!
//! ```sh
//! cargo run --release --example botnet_beam
//! ```

use obscor::netmodel::{Scenario, SourceClass};
use obscor::stats::fit::fit_modified_cauchy;

fn main() {
    let scenario = Scenario::paper_scaled(1 << 16, 13);
    let pop = &scenario.population;

    // The botnet cohort active at the first telescope window.
    let t0 = scenario.caida_windows[0].coord;
    let cohort: Vec<_> = pop
        .sources
        .iter()
        .filter(|s| s.class == SourceClass::Botnet && s.active_at(t0))
        .collect();
    println!(
        "botnet cohort at {}: {} nodes (of {} sources in the world)",
        scenario.caida_windows[0].label,
        cohort.len(),
        pop.len()
    );

    // Cohort survival month by month: the raw drifting beam.
    println!("\nmonth     active  fraction  bar");
    let mut lags = Vec::new();
    let mut fractions = Vec::new();
    for m in 0..scenario.grid.len() {
        let (lo, hi) = scenario.grid.month_interval(m);
        let still = cohort.iter().filter(|s| s.interval.overlaps(lo, hi)).count();
        let frac = still as f64 / cohort.len().max(1) as f64;
        lags.push((m as f64 + 0.5) - t0);
        fractions.push(frac);
        println!(
            "{}  {:>6}  {:>7.3}   {}",
            scenario.grid.label(m),
            still,
            frac,
            "#".repeat((frac * 40.0) as usize)
        );
    }

    // The paper's model of exactly this curve.
    if let Some(fit) = fit_modified_cauchy(&lags, &fractions) {
        println!(
            "\nmodified Cauchy fit: beta/(beta+|t-t0|^alpha) with alpha = {:.2}, beta = {:.2}",
            fit.alpha, fit.beta
        );
        println!(
            "one-month drop 1/(beta+1) = {:.0}%  (paper: 20-50% depending on brightness)",
            100.0 / (fit.beta + 1.0)
        );
    }

    // Lifetimes by brightness: why bright beams drop more slowly.
    println!("\nmean activity lifetime by brightness stratum:");
    for (lo, hi, name) in [
        (1.0, 16.0, "dim      (d < 2^4)   "),
        (16.0, 1024.0, "mid      (2^4..2^10) "),
        (1024.0, f64::MAX, "bright   (d >= 2^10) "),
    ] {
        let ls: Vec<f64> = pop
            .sources
            .iter()
            .filter(|s| s.brightness >= lo && s.brightness < hi)
            .map(|s| s.interval.lifetime())
            .collect();
        if !ls.is_empty() {
            let mean = ls.iter().sum::<f64>() / ls.len() as f64;
            println!("  {name} {:>7} sources, mean lifetime {mean:.1} months", ls.len());
        }
    }
}
