//! SARIF 2.1.0 output for `cargo xtask audit --format sarif`.
//!
//! Emits the minimal valid subset GitHub code scanning consumes: one run,
//! one driver with per-rule metadata from the [`crate::docs`] registry,
//! one `result` per finding with a physical location, the audit's stable
//! fingerprint under `partialFingerprints`, and — when gated against a
//! baseline — a `suppressions` entry carrying the baseline justification
//! so accepted debt does not annotate PRs. The finding set round-trips
//! `--format json` exactly: same (rule, file, line, fingerprint) tuples.

use crate::baseline::{Baseline, Gate};
use crate::docs::RULE_DOCS;
use crate::{json_escape, AuditReport};

/// The partialFingerprints key naming our fingerprint scheme. Versioned
/// so a future fingerprint change does not silently match old results.
pub const FINGERPRINT_KEY: &str = "obscorAudit/v1";

/// Render `report` as a SARIF 2.1.0 document. When `gate` is given,
/// baselined findings carry an accepted `suppressions` entry whose
/// justification is the matching baseline `why` (looked up in
/// `baseline`); new findings have an empty `suppressions` array.
pub fn to_sarif(report: &AuditReport, gate: Option<(&Gate, &Baseline)>) -> String {
    let mut s = String::from(
        "{\"$schema\":\
         \"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/\
         Schemata/sarif-schema-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"obscor-audit\",\
         \"informationUri\":\"https://example.invalid/obscor/DESIGN.md\",\
         \"version\":\"1.0.0\",\"rules\":[",
    );
    for (i, d) in RULE_DOCS.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"rejects {}\"}},\
             \"fullDescription\":{{\"text\":\"{}\"}},\
             \"defaultConfiguration\":{{\"level\":\"error\"}}}}",
            json_escape(d.name),
            json_escape(d.short),
            json_escape(d.long),
        ));
    }
    s.push_str("]}},\"results\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let rule_index = RULE_DOCS.iter().position(|r| r.name == d.rule);
        let baselined = gate.is_some_and(|(g, _)| !g.new.contains(&i));
        let suppressions = if baselined {
            let why = gate
                .and_then(|(_, b)| {
                    b.entries.iter().find(|e| e.fingerprint == d.fingerprint)
                })
                .map(|e| e.why.as_str())
                .unwrap_or("");
            format!(
                "[{{\"kind\":\"external\",\"status\":\"accepted\",\
                 \"justification\":\"{}\"}}]",
                json_escape(why)
            )
        } else {
            "[]".to_string()
        };
        s.push_str(&format!(
            "{{\"ruleId\":\"{}\",{}\"level\":\"error\",\
             \"message\":{{\"text\":\"{}\"}},\
             \"locations\":[{{\"physicalLocation\":{{\
             \"artifactLocation\":{{\"uri\":\"{}\",\"uriBaseId\":\"SRCROOT\"}},\
             \"region\":{{\"startLine\":{}}}}}}}],\
             \"partialFingerprints\":{{\"{FINGERPRINT_KEY}\":\"{}\"}},\
             \"suppressions\":{suppressions}}}",
            json_escape(d.rule),
            rule_index.map(|r| format!("\"ruleIndex\":{r},")).unwrap_or_default(),
            json_escape(&d.message),
            json_escape(&d.file),
            d.line,
            json_escape(&d.fingerprint),
        ));
    }
    s.push_str(
        "],\"columnKind\":\"utf16CodeUnits\",\
         \"originalUriBaseIds\":{\"SRCROOT\":{\"uri\":\"file:///\"}}}]}",
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Diagnostic;

    fn report() -> AuditReport {
        AuditReport {
            diagnostics: vec![
                Diagnostic {
                    rule: "panic-path",
                    file: "crates/core/src/lib.rs".into(),
                    line: 7,
                    message: "`unwrap()` in panic-free \"library\" code".into(),
                    fingerprint: "deadbeefdeadbeef".into(),
                },
                Diagnostic {
                    rule: "nondet-reach",
                    file: "crates/cli/src/emit.rs".into(),
                    line: 12,
                    message: "hash iteration reaches the codec".into(),
                    fingerprint: "0123456789abcdef".into(),
                },
            ],
            files_scanned: 2,
            call_graph: Default::default(),
        }
    }

    #[test]
    fn sarif_has_required_structure() {
        let s = to_sarif(&report(), None);
        assert!(s.contains("\"version\":\"2.1.0\""));
        assert!(s.contains("sarif-schema-2.1.0.json"));
        assert!(s.contains("\"name\":\"obscor-audit\""));
        assert!(s.contains("\"ruleId\":\"panic-path\""));
        assert!(s.contains("\"startLine\":7"));
        assert!(s.contains(&format!("\"{FINGERPRINT_KEY}\":\"deadbeefdeadbeef\"")));
        // Message quotes are escaped, not raw.
        assert!(s.contains("panic-free \\\"library\\\" code"));
        // Every engine rule is declared in driver metadata.
        for d in RULE_DOCS {
            assert!(s.contains(&format!("\"id\":\"{}\"", d.name)), "{} missing", d.name);
        }
    }

    #[test]
    fn gated_sarif_suppresses_baselined_findings() {
        let r = report();
        let mut b = Baseline::from_diagnostics(&r.diagnostics[..1]);
        b.entries[0].why = "frozen legacy debt".into();
        let g = crate::baseline::gate(&r.diagnostics, &b);
        let s = to_sarif(&r, Some((&g, &b)));
        assert!(s.contains("\"justification\":\"frozen legacy debt\""));
        // Exactly one suppressed result; the new finding has none.
        assert_eq!(s.matches("\"status\":\"accepted\"").count(), 1);
        assert!(s.contains("\"suppressions\":[]"));
    }
}
