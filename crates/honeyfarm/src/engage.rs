//! Engagement-based classification.
//!
//! Unlike a passive darkspace, the honeyfarm *responds* to traffic, so it
//! can probe a source's behaviour and label it — GreyNoise's enrichment.
//! Classification here observes the source's true behavioural class
//! through a noisy channel (real enrichment pipelines mislabel a small
//! fraction), and maps classes onto GreyNoise-style intent labels.

use obscor_netmodel::SourceClass;
use rand::{Rng, RngExt};

/// Probability that engagement yields the correct behaviour class.
pub const CLASSIFICATION_ACCURACY: f64 = 0.9;

/// The result of engaging one source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Engagement {
    /// The class label the honeyfarm assigns.
    pub observed_class: SourceClass,
    /// GreyNoise-style intent: "malicious" or "benign".
    pub intent: &'static str,
    /// Whether the source completed a TCP handshake when probed
    /// (backscatter and misconfigurations don't: they never solicited
    /// the conversation).
    pub handshake: bool,
}

/// Engage a source of true class `class` and produce the observed
/// enrichment.
pub fn engage<R: Rng + ?Sized>(class: SourceClass, rng: &mut R) -> Engagement {
    let observed_class = if rng.random::<f64>() < CLASSIFICATION_ACCURACY {
        class
    } else {
        // Misclassification: uniform over the other classes.
        let others: Vec<SourceClass> =
            SourceClass::ALL.into_iter().filter(|c| *c != class).collect();
        others[rng.random_range(0..others.len())]
    };
    Engagement {
        observed_class,
        intent: intent_of(observed_class),
        handshake: matches!(class, SourceClass::Scanner | SourceClass::Botnet),
    }
}

/// GreyNoise-style intent mapping.
pub fn intent_of(class: SourceClass) -> &'static str {
    match class {
        SourceClass::Scanner | SourceClass::Botnet => "malicious",
        SourceClass::Backscatter | SourceClass::Misconfig => "benign",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn classification_is_mostly_correct() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let correct = (0..n)
            .filter(|_| engage(SourceClass::Scanner, &mut rng).observed_class == SourceClass::Scanner)
            .count();
        let acc = correct as f64 / n as f64;
        assert!((acc - CLASSIFICATION_ACCURACY).abs() < 0.01, "accuracy {acc}");
    }

    #[test]
    fn misclassifications_cover_other_classes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5_000 {
            let e = engage(SourceClass::Misconfig, &mut rng);
            if e.observed_class != SourceClass::Misconfig {
                seen.insert(e.observed_class);
            }
        }
        assert_eq!(seen.len(), 3, "all three other classes appear as errors");
    }

    #[test]
    fn intent_mapping() {
        assert_eq!(intent_of(SourceClass::Scanner), "malicious");
        assert_eq!(intent_of(SourceClass::Botnet), "malicious");
        assert_eq!(intent_of(SourceClass::Backscatter), "benign");
        assert_eq!(intent_of(SourceClass::Misconfig), "benign");
    }

    #[test]
    fn handshake_reflects_true_class() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(engage(SourceClass::Scanner, &mut rng).handshake);
        assert!(engage(SourceClass::Botnet, &mut rng).handshake);
        assert!(!engage(SourceClass::Backscatter, &mut rng).handshake);
        assert!(!engage(SourceClass::Misconfig, &mut rng).handshake);
    }
}
