//! Packet model, capture format, and constant-packet windowing.
//!
//! The observatories in the paper consume raw packet captures. This crate
//! provides the packet-level substrate:
//!
//! * [`packet`] — a compact IPv4 packet-header record ([`Packet`]) with the
//!   fields the traffic-matrix pipeline uses (timestamp, source,
//!   destination, protocol, ports, length),
//! * [`mod@format`] — a real libpcap-compatible codec: captures are written as
//!   Ethernet II + IPv4 + TCP/UDP/ICMP frames with correct IPv4 and
//!   transport checksums, and parsed back,
//! * [`window`] — the paper's *constant packet, variable time* sampling:
//!   streams are cut into windows of exactly `N_V` valid packets, which
//!   "simplif\[ies\] the statistical analysis of the heavy-tail distributions
//!   commonly found in network traffic quantities",
//! * [`filter`] — composable packet validity filters (darkspace prefix,
//!   protocol, port) used to discard the small amount of legitimate traffic
//!   before analysis.

pub mod expr;
pub mod filter;
pub mod format;
pub mod packet;
pub mod window;

pub use expr::{parse as parse_filter, Expr};
pub use filter::{AcceptAll, AndFilter, NotFilter, PacketFilter, PrefixFilter, ProtocolFilter};
pub use format::{PcapReader, PcapWriter};
pub use packet::{Ip4, Packet, Protocol};
pub use window::{ConstantPacketWindower, Window};
