//! Integration: the pipeline's `MetricsSnapshot` — JSON schema round-trip,
//! merge algebra on real snapshots, and metric-name stability.
//!
//! The name-stability test doubles as the strict-invariants check: CI runs
//! this same binary with `--features obscor/strict-invariants`, and the
//! pinned name list must hold under both configurations — the invariant
//! layer may add *work*, never metrics.

use obscor::core::{pipeline, AnalysisConfig, PaperAnalysis};
use obscor::netmodel::Scenario;
use obscor_obs::MetricsSnapshot;
use std::sync::{Mutex, OnceLock};

fn run(seed: u64) -> PaperAnalysis {
    // The pipeline deltas the process-global registry around each run, so
    // concurrent runs in this test binary would bleed into each other's
    // snapshots. Serializing them keeps every delta exact.
    static LOCK: Mutex<()> = Mutex::new(());
    let _guard = LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let s = Scenario::paper_scaled(1 << 13, seed);
    pipeline::run(&s, &AnalysisConfig::fast())
}

fn metrics() -> &'static MetricsSnapshot {
    static M: OnceLock<MetricsSnapshot> = OnceLock::new();
    M.get_or_init(|| run(7).metrics)
}

/// Every metric name the pipeline emits, pinned. A missing name means an
/// instrumentation point was dropped; a new name must be added here (and to
/// DESIGN.md §10) deliberately.
const PINNED_NAMES: [&str; 80] = [
    "config.min_bin_sources",
    "config.month_count",
    "config.n_v",
    "config.window_count",
    "core.binning.values_total",
    "core.degrees.sources_total",
    "core.fit_curves.dropped_total",
    "core.fit_curves.fitted_total",
    "core.peak_correlation.windows_total",
    "core.temporal_curves.curves_total",
    "core.zm_fit.fits_total",
    "hypersparse.accumulator.carry_merges_total",
    "hypersparse.accumulator.leaves_total",
    "hypersparse.accumulator.merges_total",
    "hypersparse.accumulator.pushed_total",
    "hypersparse.leaf_compact.triples",
    "hypersparse.merge_all.pair_merges_total",
    "hypersparse.merge_all.parts_total",
    "span.core.binning.calls_total",
    "span.core.binning.ns",
    "span.core.degrees.calls_total",
    "span.core.degrees.ns",
    "span.core.fit_curves.calls_total",
    "span.core.fit_curves.ns",
    "span.core.peak_correlation.calls_total",
    "span.core.peak_correlation.ns",
    "span.core.temporal_curves.calls_total",
    "span.core.temporal_curves.ns",
    "span.core.zm_fit.calls_total",
    "span.core.zm_fit.ns",
    "span.hypersparse.accumulator.finalize.calls_total",
    "span.hypersparse.accumulator.finalize.ns",
    "span.hypersparse.leaf_compact.calls_total",
    "span.hypersparse.leaf_compact.ns",
    "span.hypersparse.merge_all.calls_total",
    "span.hypersparse.merge_all.ns",
    "span.pipeline.run.calls_total",
    "span.pipeline.run.ns",
    "span.stage.capture.calls_total",
    "span.stage.capture.ns",
    "span.stage.curves.calls_total",
    "span.stage.curves.ns",
    "span.stage.degrees.calls_total",
    "span.stage.degrees.ns",
    "span.stage.distributions.calls_total",
    "span.stage.distributions.ns",
    "span.stage.fits.calls_total",
    "span.stage.fits.ns",
    "span.stage.honeyfarm.calls_total",
    "span.stage.honeyfarm.ns",
    "span.stage.matrices.calls_total",
    "span.stage.matrices.ns",
    "span.stage.peaks.calls_total",
    "span.stage.peaks.ns",
    "span.stage.quadrants.calls_total",
    "span.stage.quadrants.ns",
    "span.stage.quantities.calls_total",
    "span.stage.quantities.ns",
    "span.telescope.build_matrix.calls_total",
    "span.telescope.build_matrix.ns",
    "span.telescope.capture_all_windows.calls_total",
    "span.telescope.capture_all_windows.ns",
    "span.telescope.capture_window.calls_total",
    "span.telescope.capture_window.ns",
    "stage.capture.windows_total",
    "stage.curves.computed_total",
    "stage.degrees.windows_total",
    "stage.distributions.computed_total",
    "stage.fits.fitted_total",
    "stage.honeyfarm.months_total",
    "stage.matrices.built_total",
    "stage.matrices.nnz_total",
    "stage.peaks.computed_total",
    "stage.quadrants.entries_total",
    "stage.quantities.computed_total",
    "telescope.build_matrix.edges_total",
    "telescope.build_matrix.leaf_capacity",
    "telescope.capture.discarded_packets_total",
    "telescope.capture.valid_packets_total",
    "telescope.capture.windows_total",
];

#[test]
fn pipeline_metric_names_are_pinned() {
    let names = metrics().metric_names();
    let got: Vec<&str> = names.iter().map(String::as_str).collect();
    // metric_names() is a BTreeSet, so both sides are sorted; a plain
    // equality diff points straight at the added/removed name.
    assert_eq!(got, PINNED_NAMES, "pipeline metric names drifted");
}

#[test]
fn snapshot_round_trips_byte_identically() {
    let snap = metrics();
    let json = snap.to_json();
    let back = MetricsSnapshot::from_json(&json).expect("pipeline snapshot parses");
    assert_eq!(&back, snap, "decode(encode(s)) != s");
    assert_eq!(back.to_json(), json, "re-encoding is not byte-stable");
}

#[test]
fn merge_of_real_snapshots_is_associative_and_commutative() {
    let (a, b, c) = (run(1).metrics, run(2).metrics, run(3).metrics);
    let ab_c = {
        let mut m = a.clone();
        m.merge(&b);
        m.merge(&c);
        m
    };
    let a_bc = {
        let mut bc = b.clone();
        bc.merge(&c);
        let mut m = a.clone();
        m.merge(&bc);
        m
    };
    assert_eq!(ab_c, a_bc, "merge is not associative on pipeline snapshots");
    let ba = {
        let mut m = b.clone();
        m.merge(&a);
        m
    };
    let ab = {
        let mut m = a.clone();
        m.merge(&b);
        m
    };
    assert_eq!(ab, ba, "merge is not commutative on pipeline snapshots");
}

#[test]
fn counters_reflect_the_run_deterministically() {
    let m = metrics();
    // 5 windows of 2^13 valid packets each; every pushed edge is counted.
    assert_eq!(m.counters["telescope.capture.valid_packets_total"], 5 * (1 << 13));
    assert_eq!(m.counters["stage.capture.windows_total"], 5);
    assert_eq!(m.counters["stage.matrices.built_total"], 5);
    assert_eq!(m.gauges["config.n_v"], 1 << 13);
    // Conservation: every valid packet becomes exactly one pushed triple.
    assert_eq!(
        m.counters["hypersparse.accumulator.pushed_total"],
        m.counters["telescope.build_matrix.edges_total"]
    );
    // The span histogram algebra holds on real data: count equals calls.
    assert_eq!(
        m.histograms["span.telescope.capture_window.ns"].count,
        m.counters["span.telescope.capture_window.calls_total"]
    );
}
