//! Property-based tests for the world model.

use obscor_netmodel::activity::{pareto_scale_for_brightness, ActivityInterval, ChurnModel};
use obscor_netmodel::{HybridPowerLaw, MonthGrid, PopulationConfig, SourcePopulation};
use obscor_stats::zipf::ZipfMandelbrot;
use proptest::prelude::*;

proptest! {
    /// Interval overlap fraction is in [0, 1] and consistent with the
    /// boolean overlap test.
    #[test]
    fn interval_overlap_consistent(
        birth in -50.0f64..50.0,
        lifetime in 0.0f64..40.0,
        lo in -20.0f64..20.0,
        width in 0.01f64..10.0,
    ) {
        let iv = ActivityInterval::new(birth, birth + lifetime);
        let hi = lo + width;
        let frac = iv.overlap_fraction(lo, hi);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&frac));
        prop_assert_eq!(frac > 0.0, iv.overlaps(lo, hi));
    }

    /// active_at implies overlap with any window containing the instant.
    #[test]
    fn active_implies_overlap(
        birth in -20.0f64..20.0,
        lifetime in 0.01f64..20.0,
        t in -20.0f64..40.0,
    ) {
        let iv = ActivityInterval::new(birth, birth + lifetime);
        if iv.active_at(t) {
            prop_assert!(iv.overlaps(t - 0.5, t + 0.5));
            prop_assert!(iv.lifetime() > 0.0);
        }
    }

    /// Pareto lifetimes respect the scale floor and the analytic kernel is
    /// a valid monotone survival curve.
    #[test]
    fn churn_kernel_is_survival_like(
        shape in 1.2f64..3.0,
        x_m in 0.2f64..3.0,
    ) {
        let churn = ChurnModel::new(shape, 15.0);
        let mut last = churn.analytic_overlap(x_m, 0.0);
        prop_assert!((last - 1.0).abs() < 1e-6, "kernel(0) = {last}");
        for step in 1..=20 {
            let tau = step as f64 * 0.75;
            let k = churn.analytic_overlap(x_m, tau);
            prop_assert!(k >= -1e-12 && k <= last + 1e-9, "not monotone at {tau}");
            last = k;
        }
    }

    /// The brightness calibration is continuous (no jumps bigger than the
    /// grid step allows) and bounded by its two extremes.
    #[test]
    fn calibration_bounded_and_continuous(
        log2d in 0.0f64..30.0,
        knee in 1.0f64..14.0,
        spread in 1.0f64..10.0,
    ) {
        let bright = knee + spread;
        let x = pareto_scale_for_brightness(log2d, knee, bright);
        prop_assert!((0.6..=1.8).contains(&x));
        let x_eps = pareto_scale_for_brightness(log2d + 1e-6, knee, bright);
        prop_assert!((x - x_eps).abs() < 1e-4, "discontinuity at {log2d}");
    }

    /// Month grids label every month uniquely and index_of inverts label.
    #[test]
    fn month_grid_labels_bijective(year in 1990i32..2100, month in 1u32..=12, n in 1usize..40) {
        let g = MonthGrid::new(year, month, n);
        let labels = g.labels();
        let unique: std::collections::HashSet<&String> = labels.iter().collect();
        prop_assert_eq!(unique.len(), n);
        for (i, l) in labels.iter().enumerate() {
            prop_assert_eq!(g.index_of(l), Some(i));
        }
    }

    /// Population generation is seed-deterministic and IPs stay unique and
    /// outside the darkspace for any configuration.
    #[test]
    fn population_wellformed(seed in any::<u64>(), n in 10usize..400, octet in any::<u8>()) {
        let config = PopulationConfig {
            n_sources: n,
            darkspace_octet: octet,
            seed,
            ..PopulationConfig::default()
        };
        let p = SourcePopulation::generate(config.clone());
        let q = SourcePopulation::generate(config);
        prop_assert_eq!(&p.sources, &q.sources);
        let mut ips = std::collections::HashSet::new();
        for s in &p.sources {
            prop_assert!(ips.insert(s.ip.0));
            prop_assert_ne!((s.ip.0 >> 24) as u8, octet);
            prop_assert!(s.brightness >= 1.0);
            prop_assert!(s.interval.lifetime() > 0.0);
        }
    }

    /// Hybrid mixtures are valid distributions for any weights/components.
    #[test]
    fn hybrid_mixture_is_a_distribution(
        w1 in 0.01f64..10.0,
        w2 in 0.01f64..10.0,
        a1 in 0.6f64..3.0,
        a2 in 0.6f64..3.0,
        dmax in 16u64..512,
    ) {
        let h = HybridPowerLaw::new(vec![
            (w1, ZipfMandelbrot::new(a1, 0.0, dmax)),
            (w2, ZipfMandelbrot::new(a2, 1.0, dmax / 2)),
        ]);
        let total: f64 = (1..=h.d_max()).map(|d| h.pmf(d)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        prop_assert!(h.pmf(0) == 0.0 && h.pmf(h.d_max() + 1) == 0.0);
        prop_assert!((h.binned().total() - 1.0).abs() < 1e-9);
    }
}
