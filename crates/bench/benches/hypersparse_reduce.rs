//! Substrate bench: Table II reduction kernels and element-wise merge on
//! window-scale matrices.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use obscor_hypersparse::{ops, reduce, Coo, Csr};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn synth_matrix(n: usize, seed: u64) -> Csr<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut coo = Coo::with_capacity(n);
    for _ in 0..n {
        let r: f64 = rng.random();
        let src = (r * r * 40_000.0) as u32;
        let dst = rng.random_range(0u32..1 << 22);
        coo.push(src, dst, 1u64);
    }
    coo.into_csr()
}

fn bench(c: &mut Criterion) {
    let n = 1 << 20;
    let a = synth_matrix(n, 1);
    let b2 = synth_matrix(n, 2);

    let mut g = c.benchmark_group("hypersparse_reduce");
    g.sample_size(20);
    g.throughput(Throughput::Elements(a.nnz() as u64));

    g.bench_function("valid_packets", |b| b.iter(|| black_box(reduce::valid_packets(&a))));
    g.bench_function("source_packets", |b| b.iter(|| black_box(reduce::source_packets(&a))));
    g.bench_function("source_packets_par", |b| {
        b.iter(|| black_box(reduce::source_packets_par(&a)))
    });
    g.bench_function("source_fan_out", |b| b.iter(|| black_box(reduce::source_fan_out(&a))));
    g.bench_function("destination_packets", |b| {
        b.iter(|| black_box(reduce::destination_packets(&a)))
    });
    g.bench_function("zero_norm", |b| b.iter(|| black_box(ops::zero_norm(&a))));
    g.bench_function("ewise_add", |b| b.iter(|| black_box(ops::ewise_add(&a, &b2))));
    g.bench_function("transpose", |b| b.iter(|| black_box(a.transpose())));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
