//! Differential tests of the fault-injection + recovery layer.
//!
//! The recovering restore claims three things, each checked here against
//! an independently-computed ground truth:
//!
//! 1. **Zero faults change nothing**: restoring a clean archive is
//!    bit-identical to building the window matrix directly, and the
//!    pipeline's archive path reproduces the direct path exactly.
//! 2. **Quarantine is surgical**: with K leaves permanently corrupt, the
//!    restored matrix equals the matrix built directly from the surviving
//!    leaves' packet ranges — nothing else is lost, nothing is invented.
//! 3. **The accounting is exact**: `RestoreReport` packet counts are
//!    integer-exact against the leaf partition, and the whole process is
//!    deterministic in the fault-plan seed.

use obscor_core::{pipeline, AnalysisConfig, ArchiveConfig};
use obscor_hypersparse::hier::accumulate_flat;
use obscor_hypersparse::spill::{MemMedium, SpillAccumulator, SpillConfig};
use obscor_hypersparse::{ops, reduce, Coo, Csr, SpillReport};
use obscor_netmodel::Scenario;
use obscor_telescope::{
    archive_window, capture_window, matrix, Fault, FaultKind, FaultPlan, FaultyMedium,
    RecoveringRestore, TelescopeWindow, WindowArchive,
};
use rand::{rngs::StdRng, RngExt, SeedableRng};
use std::sync::Arc;

fn window(nv: usize, seed: u64) -> TelescopeWindow {
    let s = Scenario::paper_scaled(nv, seed);
    capture_window(&s, &s.caida_windows[0])
}

/// The matrix a direct build would produce from only the packet ranges of
/// `surviving` leaves — the ground truth a degraded restore must match.
fn matrix_of_surviving_leaves(
    w: &TelescopeWindow,
    archive: &WindowArchive,
    surviving: &[usize],
) -> Csr<u64> {
    let chunks: Vec<_> = w.window.packets.chunks(archive.leaf_nv).collect();
    let leaves: Vec<Csr<u64>> = surviving
        .iter()
        .map(|&i| {
            let mut coo = Coo::with_capacity(chunks[i].len());
            for p in chunks[i] {
                coo.push(p.src.0, p.dst.0, 1u64);
            }
            coo.into_csr()
        })
        .collect();
    ops::merge_all(leaves)
}

/// Leaf indices the default retry policy keeps, under `plan`: unfaulted
/// leaves and transient reads (whose failure budget is within the retry
/// budget). Truncation, bit flips, and drops are quarantined.
fn surviving_indices(plan: &FaultPlan, archive: &WindowArchive) -> Vec<usize> {
    plan.assignments(archive)
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            matches!(f, None | Some(Fault::TransientRead { .. }))
        })
        .map(|(i, _)| i)
        .collect()
}

#[test]
fn zero_fault_restore_is_bit_identical_to_direct_build() {
    let w = window(1 << 12, 5);
    let direct = matrix::build_matrix(&w);
    for n_leaves in [1usize, 3, 16, 50] {
        let archive = archive_window(&w, n_leaves);
        let (restored, report) = RecoveringRestore::default().restore(&archive);
        assert_eq!(restored, direct, "n_leaves = {n_leaves}");
        assert!(report.is_complete());
        assert_eq!(report.coverage(), 1.0);
        report.check_invariants().unwrap();
    }
}

#[test]
fn degraded_restore_equals_direct_build_over_surviving_leaves() {
    let w = window(1 << 12, 5);
    let archive = archive_window(&w, 32);
    for (seed, rate) in [(1u64, 0.2), (7, 0.5), (99, 0.8)] {
        let plan = FaultPlan::new(seed, rate).unwrap();
        let surviving = surviving_indices(&plan, &archive);
        let (restored, report) = RecoveringRestore::default().restore(&plan.apply(&archive));
        let expected = matrix_of_surviving_leaves(&w, &archive, &surviving);
        assert_eq!(
            restored, expected,
            "plan {seed}:{rate}: restore must equal the surviving-leaf build"
        );
        assert_eq!(report.n_restored(), surviving.len());
        report.check_invariants().unwrap();
    }
}

#[test]
fn coverage_accounting_is_integer_exact() {
    let w = window(1 << 12, 5);
    let archive = archive_window(&w, 32);
    let plan = FaultPlan::new(13, 0.4).unwrap();
    let surviving = surviving_indices(&plan, &archive);
    let (restored, report) = RecoveringRestore::default().restore(&plan.apply(&archive));

    // Expected packets: the whole window. Restored packets: exactly the
    // sizes of the surviving leaves' packet chunks.
    let chunks: Vec<usize> =
        w.window.packets.chunks(archive.leaf_nv).map(|c| c.len()).collect();
    let expected_restored: u64 = surviving.iter().map(|&i| chunks[i] as u64).sum();
    assert_eq!(report.packets_expected, w.packets() as u64);
    assert_eq!(report.packets_restored, expected_restored);
    assert_eq!(report.packets_restored, reduce::valid_packets(&restored));
    let expect_cov = expected_restored as f64 / w.packets() as f64;
    assert!((report.coverage() - expect_cov).abs() < 1e-12);
    // Quarantine list is exactly the complement of the survivors.
    let quarantined: Vec<usize> = report.quarantined.iter().map(|q| q.index).collect();
    let complement: Vec<usize> =
        (0..archive.n_leaves()).filter(|i| !surviving.contains(i)).collect();
    assert_eq!(quarantined, complement);
}

#[test]
fn restore_is_deterministic_under_a_fixed_seed() {
    let w = window(1 << 12, 5);
    let archive = archive_window(&w, 24);
    let plan = FaultPlan::new(21, 0.6).unwrap();
    // Fresh FaultyArchive each time: transient budgets reset with it.
    let (m1, r1) = RecoveringRestore::default().restore(&plan.apply(&archive));
    let (m2, r2) = RecoveringRestore::default().restore(&plan.apply(&archive));
    assert_eq!(m1, m2);
    assert_eq!(r1, r2);
    // And a different seed genuinely changes the outcome at this rate.
    let other = FaultPlan::new(22, 0.6).unwrap();
    let (_, r3) = RecoveringRestore::default().restore(&other.apply(&archive));
    assert_ne!(r1.quarantined, r3.quarantined, "seed must steer the plan");
}

#[test]
fn transient_only_plans_always_recover_completely() {
    let w = window(1 << 12, 5);
    let archive = archive_window(&w, 16);
    let direct = matrix::build_matrix(&w);
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::with_kinds(seed, 1.0, &[FaultKind::TransientRead]).unwrap();
        let (restored, report) = RecoveringRestore::default().restore(&plan.apply(&archive));
        assert_eq!(restored, direct, "seed {seed}");
        assert!(report.is_complete());
        assert!(report.retries > 0, "full-rate transient plan must have retried");
        assert_eq!(report.recovered, 16);
    }
}

#[test]
fn fault_metrics_are_recorded_on_the_faulted_path_only() {
    let w = window(1 << 12, 5);
    let archive = archive_window(&w, 16);

    let before = obscor_obs::snapshot();
    let (_, report) = RecoveringRestore::default().restore(&archive);
    let clean_delta = obscor_obs::snapshot().delta_since(&before);
    assert!(report.is_complete());
    // Tests share the process-global registry, so only assert what this
    // thread alone controls: a clean restore emits no *injection*
    // counters unless some concurrent test injected faults itself.
    let plan = FaultPlan::new(4, 0.7).unwrap();
    let before = obscor_obs::snapshot();
    let faulty = plan.apply(&archive);
    let (_, report) = RecoveringRestore::default().restore(&faulty);
    let fault_delta = obscor_obs::snapshot().delta_since(&before);
    assert!(!report.is_complete(), "seed 4 at 0.7 must injure this archive");
    for name in [
        "telescope.faults.injected_total",
        "telescope.restore.quarantined_total",
        "telescope.restore.leaves_total",
    ] {
        assert!(
            fault_delta.counters.get(name).copied().unwrap_or(0) > 0,
            "missing counter {name}; clean delta had {:?}",
            clean_delta.counters.get(name)
        );
    }
    assert!(
        fault_delta.counters["telescope.faults.injected_total"] >= faulty.n_faulted() as u64
    );
}

#[test]
fn pipeline_archive_path_without_faults_reproduces_every_artifact() {
    let s = Scenario::paper_scaled(1 << 12, 9);
    let direct = pipeline::run(&s, &AnalysisConfig::fast());
    let archived =
        pipeline::run(&s, &AnalysisConfig::fast().with_archive(ArchiveConfig::with_leaves(8)));
    assert!(archived.restore.iter().all(|r| r.is_complete()));
    assert_eq!(direct.quantities, archived.quantities);
    assert_eq!(direct.distributions, archived.distributions);
    assert_eq!(direct.peaks, archived.peaks);
    assert_eq!(direct.curves, archived.curves);
    assert_eq!(direct.fits, archived.fits);
}

// ---------------------------------------------------------------------
// Spill-layer faults: the same plan machinery pointed at the out-of-core
// build's reading layer (DESIGN.md §16). A corrupt spill frame must
// degrade coverage — quarantining the exact leaf interval the part
// covered — and never change a single surviving bit.
// ---------------------------------------------------------------------

/// Deterministic heavy-tailed stream for the spill-fault tests.
fn spill_pairs(n: usize, seed: u64) -> Vec<(u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let src: u32 = rng.random_range(0u32..500) * 7 + 1;
            let dst: u32 = rng.random_range(0u32..80) + (44 << 24);
            (src, dst)
        })
        .collect()
}

/// The budgeted build with `plan` injected between the spill store and
/// its in-memory medium. A zero budget evicts every carry, so every part
/// crosses the faulted reading layer at least once.
fn spilled_with_plan(pairs: &[(u32, u32)], leaf: usize, plan: FaultPlan) -> (Csr<u64>, SpillReport) {
    let medium = FaultyMedium::new(MemMedium::new(), plan);
    let config =
        SpillConfig { leaf_capacity: leaf, memory_budget: Some(0), ..SpillConfig::default() };
    let mut acc = SpillAccumulator::new(config, Arc::new(medium));
    for &(s, d) in pairs {
        acc.push_edge(s, d);
    }
    acc.finalize()
}

/// Ground truth for a degraded spill build: the flat one-shot build over
/// exactly the leaves *outside* every quarantined `[first_leaf,
/// first_leaf + n_leaves)` interval.
fn flat_of_surviving(pairs: &[(u32, u32)], leaf: usize, report: &SpillReport) -> Csr<u64> {
    let n_leaves = pairs.len().div_ceil(leaf);
    let mut lost = vec![false; n_leaves];
    for q in &report.quarantined {
        for i in q.first_leaf..q.first_leaf + q.n_leaves {
            lost[usize::try_from(i).unwrap()] = true;
        }
    }
    accumulate_flat(
        pairs
            .chunks(leaf)
            .enumerate()
            .filter(|(i, _)| !lost[*i])
            .flat_map(|(_, c)| c.iter().map(|&(s, d)| (s, d, 1u64))),
    )
}

#[test]
fn clean_plan_on_the_spill_layer_changes_nothing() {
    let p = spill_pairs(4_000, 11);
    let oracle = accumulate_flat(p.iter().map(|&(s, d)| (s, d, 1u64)));
    let (m, report) = spilled_with_plan(&p, 100, FaultPlan::new(1, 0.0).unwrap());
    assert_eq!(m, oracle);
    assert!(report.is_exact(), "{report:?}");
    assert!(report.stats.reloads > 0, "zero budget must route parts through the medium");
    report.check_invariants().unwrap();
}

#[test]
fn faulted_spill_build_equals_flat_build_over_surviving_leaves() {
    let p = spill_pairs(4_000, 11);
    for (seed, rate) in [(1u64, 0.2), (7, 0.5), (99, 0.8)] {
        let (m, report) = spilled_with_plan(&p, 100, FaultPlan::new(seed, rate).unwrap());
        report.check_invariants().unwrap();
        assert!(
            !report.quarantined.is_empty(),
            "plan {seed}:{rate} never fired on {} evictions",
            report.stats.evictions
        );
        let expected = flat_of_surviving(&p, 100, &report);
        assert_eq!(
            m, expected,
            "plan {seed}:{rate}: degraded build must equal the surviving-leaf build"
        );
        // Accounting is integer-exact against the leaf partition.
        let lost: u64 = report.quarantined.iter().map(|q| q.packets).sum();
        assert_eq!(report.packets_restored, report.packets_expected - lost);
        assert_eq!(report.packets_restored, reduce::valid_packets(&m));
        assert!(report.coverage() < 1.0, "plan {seed}:{rate}");
    }
}

#[test]
fn transient_only_spill_plans_recover_exactly() {
    let p = spill_pairs(3_000, 23);
    let oracle = accumulate_flat(p.iter().map(|&(s, d)| (s, d, 1u64)));
    for seed in [1u64, 2, 3] {
        let plan = FaultPlan::with_kinds(seed, 1.0, &[FaultKind::TransientRead]).unwrap();
        let (m, report) = spilled_with_plan(&p, 64, plan);
        assert_eq!(m, oracle, "seed {seed}: transient faults must be retried away");
        assert!(report.is_exact(), "seed {seed}: {report:?}");
        assert!(report.stats.reloads > 0);
    }
}

#[test]
fn spill_fault_handling_is_deterministic_in_the_plan_seed() {
    let p = spill_pairs(4_000, 11);
    let plan = FaultPlan::new(21, 0.6).unwrap();
    // Fresh FaultyMedium each run: transient budgets reset with it.
    let (m1, r1) = spilled_with_plan(&p, 100, plan.clone());
    let (m2, r2) = spilled_with_plan(&p, 100, plan);
    assert_eq!(m1, m2);
    assert_eq!(r1.quarantined, r2.quarantined);
    assert_eq!(r1.stats, r2.stats);
    // A different seed genuinely steers which parts are lost.
    let (_, r3) = spilled_with_plan(&p, 100, FaultPlan::new(22, 0.6).unwrap());
    assert_ne!(r1.quarantined, r3.quarantined, "seed must steer the plan");
}

#[test]
fn pipeline_faulted_path_computes_over_surviving_packets() {
    let s = Scenario::paper_scaled(1 << 12, 9);
    let plan = FaultPlan::new(7, 0.3).unwrap();
    let a = pipeline::run(
        &s,
        &AnalysisConfig::fast().with_archive(ArchiveConfig::with_fault_plan(plan)),
    );
    assert_eq!(a.restore.len(), 5);
    assert!(a.restore.iter().any(|r| r.coverage() < 1.0));
    for (r, (label, q)) in a.restore.iter().zip(&a.quantities) {
        assert_eq!(r.label, *label);
        assert_eq!(q.valid_packets, r.packets_restored, "{label}");
        r.check_invariants().unwrap();
    }
}
