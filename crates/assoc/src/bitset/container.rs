//! Roaring-style containers over one 2^16-key chunk.
//!
//! Every [`Container`] holds the low 16 bits of the keys that share one
//! high-16-bit chunk, in whichever of three physical forms is cheapest
//! for its density:
//!
//! * **Array** — sorted unique `Vec<u16>`, 2 bytes/key; the sparse form.
//! * **Bitmap** — 1024 packed `u64` words (8 KiB flat) with a cached
//!   cardinality; the dense form, where intersection and overlap counting
//!   are word-parallel `AND` + popcount.
//! * **Runs** — sorted, non-adjacent inclusive `(start, end)` intervals,
//!   4 bytes/run; the form for contiguous slabs (full chunks, scanned
//!   prefixes).
//!
//! Mutations move between the forms with *hysteresis*: an array promotes
//! to a bitmap only above [`ARRAY_MAX`] keys, a bitmap demotes to an
//! array only below [`BITMAP_MIN`] — the gap means a workload oscillating
//! across the boundary does not thrash representations. `optimize()`
//! additionally discovers run structure the mutation path never creates.
//!
//! Every operation returns exact integer counts regardless of physical
//! form — representation is a performance choice, never a semantic one —
//! which is the determinism argument DESIGN.md §17 spells out.

use super::metrics;

/// Words in one chunk bitmap: 2^16 bits / 64.
pub(crate) const CHUNK_WORDS: usize = 1 << 10;
/// An array container promotes to a bitmap when it grows *above* this.
pub(crate) const ARRAY_MAX: usize = 4096;
/// A bitmap container demotes to an array when it shrinks *below* this.
/// Strictly less than [`ARRAY_MAX`]: the `[BITMAP_MIN, ARRAY_MAX]` band
/// is the hysteresis zone where either form is left alone.
pub(crate) const BITMAP_MIN: usize = 3840;
/// Byte cost of a bitmap container (the ceiling for every other form).
const BITMAP_BYTES: usize = CHUNK_WORDS * 8;

/// One chunk's key set, in its current physical form.
#[derive(Clone, Debug)]
pub(crate) enum Container {
    /// Sorted unique low-16 keys, at most [`ARRAY_MAX`] of them
    /// (except transiently inside a mutation, before reshaping).
    Array(Vec<u16>),
    /// Packed bitmap with cached cardinality (`card` > 0).
    Bitmap { words: Box<[u64; CHUNK_WORDS]>, card: usize },
    /// Sorted inclusive intervals with at least one key of gap between
    /// consecutive runs (adjacent runs must have been merged).
    Runs(Vec<(u16, u16)>),
}

/// Byte cost of `n` runs.
fn runs_bytes(n_runs: usize) -> usize {
    n_runs * 4
}

/// Build a bitmap word array from sorted unique keys.
fn bitmap_from_sorted(keys: &[u16]) -> Box<[u64; CHUNK_WORDS]> {
    let mut words = Box::new([0u64; CHUNK_WORDS]);
    for &k in keys {
        words[usize::from(k >> 6)] |= 1u64 << (k & 63);
    }
    words
}

/// Count set bits of `words` within the inclusive key range `[s, e]`,
/// word-parallel: masked popcount on the edge words, full popcount on the
/// interior. Returns `(count, words_touched)`.
fn bitmap_range_count(words: &[u64; CHUNK_WORDS], s: u16, e: u16) -> (usize, u64) {
    let (ws, we) = (usize::from(s >> 6), usize::from(e >> 6));
    let lo_mask = !0u64 << (s & 63);
    let hi_mask = !0u64 >> (63 - (e & 63));
    if ws == we {
        return ((words[ws] & lo_mask & hi_mask).count_ones() as usize, 1);
    }
    let mut count = (words[ws] & lo_mask).count_ones() as usize;
    for &w in &words[ws + 1..we] {
        count += w.count_ones() as usize;
    }
    count += (words[we] & hi_mask).count_ones() as usize;
    (count, (we - ws + 1) as u64)
}

/// Set every bit of the inclusive key range `[s, e]`, word-parallel.
fn bitmap_set_range(words: &mut [u64; CHUNK_WORDS], s: u16, e: u16) {
    let (ws, we) = (usize::from(s >> 6), usize::from(e >> 6));
    let lo_mask = !0u64 << (s & 63);
    let hi_mask = !0u64 >> (63 - (e & 63));
    if ws == we {
        words[ws] |= lo_mask & hi_mask;
        return;
    }
    words[ws] |= lo_mask;
    for w in &mut words[ws + 1..we] {
        *w = !0;
    }
    words[we] |= hi_mask;
}

/// Collect the set bits of `words` in ascending key order into `out`,
/// restricted to the inclusive range `[s, e]`.
fn bitmap_collect_range(words: &[u64; CHUNK_WORDS], s: u16, e: u16, out: &mut Vec<u16>) {
    let (ws, we) = (usize::from(s >> 6), usize::from(e >> 6));
    let lo_mask = !0u64 << (s & 63);
    let hi_mask = !0u64 >> (63 - (e & 63));
    for (wi, &word) in words.iter().enumerate().take(we + 1).skip(ws) {
        let mut w = word;
        if wi == ws {
            w &= lo_mask;
        }
        if wi == we {
            w &= hi_mask;
        }
        let base = (wi << 6) as u16;
        while w != 0 {
            let bit = w.trailing_zeros() as u16;
            out.push(base + bit);
            w &= w - 1;
        }
    }
}

/// Number of maximal runs in a sorted unique key slice.
fn count_runs_array(keys: &[u16]) -> usize {
    if keys.is_empty() {
        return 0;
    }
    1 + keys.windows(2).filter(|w| w[1] != w[0] + 1).count()
}

/// Number of maximal runs in a bitmap, word-parallel: a run starts at
/// every set bit whose predecessor bit is clear, so per word it is
/// `popcount(w & !(w << 1 | carry))` with the carry threading the
/// previous word's top bit across the boundary.
fn count_runs_bitmap(words: &[u64; CHUNK_WORDS]) -> usize {
    let mut runs = 0usize;
    let mut carry = 0u64; // previous word's bit 63, shifted into bit 0
    for &w in words.iter() {
        runs += (w & !((w << 1) | carry)).count_ones() as usize;
        carry = w >> 63;
    }
    runs
}

impl Container {
    /// Build from sorted unique low-16 keys: array at or below
    /// [`ARRAY_MAX`], bitmap above. Call [`Container::optimize`] after to
    /// discover run structure.
    pub(crate) fn from_sorted(keys: &[u16]) -> Container {
        if keys.len() <= ARRAY_MAX {
            metrics::container_built(metrics::Kind::Array);
            Container::Array(keys.to_vec())
        } else {
            metrics::container_built(metrics::Kind::Bitmap);
            Container::Bitmap { words: bitmap_from_sorted(keys), card: keys.len() }
        }
    }

    /// Number of keys in the container.
    pub(crate) fn card(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitmap { card, .. } => *card,
            Container::Runs(r) => {
                r.iter().map(|&(s, e)| usize::from(e - s) + 1).sum()
            }
        }
    }

    /// Membership test.
    pub(crate) fn contains(&self, k: u16) -> bool {
        match self {
            Container::Array(v) => v.binary_search(&k).is_ok(),
            Container::Bitmap { words, .. } => {
                words[usize::from(k >> 6)] & (1u64 << (k & 63)) != 0
            }
            Container::Runs(r) => {
                let i = r.partition_point(|&(s, _)| s <= k);
                i > 0 && r[i - 1].1 >= k
            }
        }
    }

    /// Insert `k`; returns whether it was new. May promote array → bitmap
    /// or runs → bitmap once the cheaper form's cost ceiling is crossed.
    pub(crate) fn insert(&mut self, k: u16) -> bool {
        let added = match self {
            Container::Array(v) => match v.binary_search(&k) {
                Ok(_) => false,
                Err(i) => {
                    v.insert(i, k);
                    true
                }
            },
            Container::Bitmap { words, card } => {
                let w = &mut words[usize::from(k >> 6)];
                let mask = 1u64 << (k & 63);
                let added = *w & mask == 0;
                *w |= mask;
                *card += usize::from(added);
                added
            }
            Container::Runs(r) => insert_into_runs(r, k),
        };
        if added {
            self.reshape_after_insert();
        }
        added
    }

    /// Remove `k`; returns whether it was present. May demote a bitmap
    /// that falls below [`BITMAP_MIN`] back to an array.
    pub(crate) fn remove(&mut self, k: u16) -> bool {
        let removed = match self {
            Container::Array(v) => match v.binary_search(&k) {
                Ok(i) => {
                    v.remove(i);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap { words, card } => {
                let w = &mut words[usize::from(k >> 6)];
                let mask = 1u64 << (k & 63);
                let removed = *w & mask != 0;
                *w &= !mask;
                *card -= usize::from(removed);
                removed
            }
            Container::Runs(r) => remove_from_runs(r, k),
        };
        if removed {
            self.reshape_after_remove();
        }
        removed
    }

    /// Promotion edge: applied after a successful insert.
    fn reshape_after_insert(&mut self) {
        match self {
            Container::Array(v) if v.len() > ARRAY_MAX => {
                metrics::promotion();
                metrics::container_built(metrics::Kind::Bitmap);
                let card = v.len();
                *self = Container::Bitmap { words: bitmap_from_sorted(v), card };
            }
            Container::Runs(r) if runs_bytes(r.len()) > BITMAP_BYTES => {
                // Pathologically fragmented runs cost more than the flat
                // bitmap; promote (insert-driven, so cost only grows).
                metrics::promotion();
                metrics::container_built(metrics::Kind::Bitmap);
                let card = self.card();
                let mut words = Box::new([0u64; CHUNK_WORDS]);
                if let Container::Runs(r) = self {
                    for &(s, e) in r.iter() {
                        bitmap_set_range(&mut words, s, e);
                    }
                }
                *self = Container::Bitmap { words, card };
            }
            _ => {}
        }
    }

    /// Demotion edge: applied after a successful remove. The demote
    /// threshold sits *below* the promote threshold, so flapping across a
    /// single boundary key cannot thrash representations.
    fn reshape_after_remove(&mut self) {
        if let Container::Bitmap { words, card } = self {
            if *card < BITMAP_MIN {
                metrics::demotion();
                metrics::container_built(metrics::Kind::Array);
                let mut keys = Vec::with_capacity(*card);
                bitmap_collect_range(words, 0, u16::MAX, &mut keys);
                *self = Container::Array(keys);
            }
        }
    }

    /// Re-pick the cheapest physical form for the current contents:
    /// converts to a run container when the run count makes intervals
    /// strictly cheaper than both the array and the bitmap form (with a
    /// 2× stickiness margin so near-ties keep the simpler form), and
    /// otherwise restores the canonical array/bitmap split.
    pub(crate) fn optimize(&mut self) {
        let card = self.card();
        let n_runs = match self {
            Container::Array(v) => count_runs_array(v),
            Container::Bitmap { words, .. } => count_runs_bitmap(words),
            Container::Runs(r) => r.len(),
        };
        let dense_bytes = if card > ARRAY_MAX { BITMAP_BYTES } else { card * 2 };
        if runs_bytes(n_runs) * 2 < dense_bytes {
            if !matches!(self, Container::Runs(_)) {
                metrics::container_built(metrics::Kind::Runs);
                let mut runs = Vec::with_capacity(n_runs);
                self.for_each_run(|s, e| runs.push((s, e)));
                *self = Container::Runs(runs);
            }
        } else if matches!(self, Container::Runs(_)) {
            let mut keys = Vec::with_capacity(card);
            self.for_each_key(|k| keys.push(k));
            *self = Container::from_sorted(&keys);
        }
    }

    /// Visit every maximal run `(start, end)` in ascending order.
    fn for_each_run(&self, mut f: impl FnMut(u16, u16)) {
        match self {
            Container::Runs(r) => {
                for &(s, e) in r {
                    f(s, e);
                }
            }
            _ => {
                // Derive runs from the ascending key stream.
                let mut cur: Option<(u16, u16)> = None;
                self.for_each_key(|k| match cur {
                    Some((s, e)) if k == e + 1 => cur = Some((s, k)),
                    Some((s, e)) => {
                        f(s, e);
                        cur = Some((k, k));
                    }
                    None => cur = Some((k, k)),
                });
                if let Some((s, e)) = cur {
                    f(s, e);
                }
            }
        }
    }

    /// Visit every key in ascending order.
    pub(crate) fn for_each_key(&self, mut f: impl FnMut(u16)) {
        match self {
            Container::Array(v) => {
                for &k in v {
                    f(k);
                }
            }
            Container::Bitmap { words, .. } => {
                for (wi, &word) in words.iter().enumerate() {
                    let mut w = word;
                    let base = (wi << 6) as u16;
                    while w != 0 {
                        let bit = w.trailing_zeros() as u16;
                        f(base + bit);
                        w &= w - 1;
                    }
                }
            }
            Container::Runs(r) => {
                for &(s, e) in r {
                    for k in s..=e {
                        f(k);
                    }
                }
            }
        }
    }

    /// All keys as a sorted vector.
    pub(crate) fn to_vec(&self) -> Vec<u16> {
        let mut out = Vec::with_capacity(self.card());
        self.for_each_key(|k| out.push(k));
        out
    }

    /// `|self ∩ other|` without materializing the intersection: pure
    /// popcount / merge / interval arithmetic on whichever two forms meet.
    pub(crate) fn overlap_count(&self, other: &Container) -> usize {
        use Container::{Array, Bitmap, Runs};
        match (self, other) {
            (Array(a), Array(b)) => overlap_array_array(a, b),
            (Array(a), Bitmap { words, .. }) | (Bitmap { words, .. }, Array(a)) => {
                metrics::words_scanned(a.len() as u64);
                a.iter()
                    .filter(|&&k| words[usize::from(k >> 6)] & (1u64 << (k & 63)) != 0)
                    .count()
            }
            (Bitmap { words: wa, .. }, Bitmap { words: wb, .. }) => {
                metrics::words_scanned(2 * CHUNK_WORDS as u64);
                wa.iter().zip(wb.iter()).map(|(&x, &y)| (x & y).count_ones() as usize).sum()
            }
            (Runs(r), Bitmap { words, .. }) | (Bitmap { words, .. }, Runs(r)) => {
                let mut count = 0;
                let mut touched = 0u64;
                for &(s, e) in r {
                    let (c, t) = bitmap_range_count(words, s, e);
                    count += c;
                    touched += t;
                }
                metrics::words_scanned(touched);
                count
            }
            (Runs(r), Array(a)) | (Array(a), Runs(r)) => overlap_runs_array(r, a),
            (Runs(a), Runs(b)) => overlap_runs_runs(a, b),
        }
    }

    /// `self ∩ other`, or `None` when the intersection is empty. The
    /// result takes the canonical form for its cardinality (array at or
    /// below [`ARRAY_MAX`], else bitmap; runs ∩ runs stays runs).
    pub(crate) fn intersect(&self, other: &Container) -> Option<Container> {
        use Container::{Array, Bitmap, Runs};
        let out = match (self, other) {
            (Array(a), Array(b)) => {
                let mut out = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    match a[i].cmp(&b[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            out.push(a[i]);
                            i += 1;
                            j += 1;
                        }
                    }
                }
                Container::Array(out)
            }
            (Array(a), Bitmap { words, .. }) | (Bitmap { words, .. }, Array(a)) => {
                metrics::words_scanned(a.len() as u64);
                Container::Array(
                    a.iter()
                        .copied()
                        .filter(|&k| words[usize::from(k >> 6)] & (1u64 << (k & 63)) != 0)
                        .collect(),
                )
            }
            (Bitmap { words: wa, .. }, Bitmap { words: wb, .. }) => {
                metrics::words_scanned(2 * CHUNK_WORDS as u64);
                let mut words = Box::new([0u64; CHUNK_WORDS]);
                let mut card = 0usize;
                for ((o, &x), &y) in words.iter_mut().zip(wa.iter()).zip(wb.iter()) {
                    *o = x & y;
                    card += o.count_ones() as usize;
                }
                if card <= ARRAY_MAX {
                    let mut keys = Vec::with_capacity(card);
                    bitmap_collect_range(&words, 0, u16::MAX, &mut keys);
                    Container::Array(keys)
                } else {
                    Container::Bitmap { words, card }
                }
            }
            (Runs(r), Bitmap { words, .. }) | (Bitmap { words, .. }, Runs(r)) => {
                let mut keys = Vec::new();
                for &(s, e) in r {
                    bitmap_collect_range(words, s, e, &mut keys);
                }
                Container::from_sorted(&keys)
            }
            (Runs(r), Array(a)) | (Array(a), Runs(r)) => {
                let mut out = Vec::new();
                let mut i = 0usize;
                for &(s, e) in r {
                    i += a[i..].partition_point(|&k| k < s);
                    let j = i + a[i..].partition_point(|&k| k <= e);
                    out.extend_from_slice(&a[i..j]);
                    i = j;
                    if i >= a.len() {
                        break;
                    }
                }
                Container::Array(out)
            }
            (Runs(a), Runs(b)) => {
                let mut out = Vec::new();
                let (mut i, mut j) = (0, 0);
                while i < a.len() && j < b.len() {
                    let (s, e) = (a[i].0.max(b[j].0), a[i].1.min(b[j].1));
                    if s <= e {
                        out.push((s, e));
                    }
                    if a[i].1 <= b[j].1 {
                        i += 1;
                    } else {
                        j += 1;
                    }
                }
                Container::Runs(out)
            }
        };
        (out.card() > 0).then_some(out)
    }

    /// `self ∪ other`, in canonical form for the result cardinality
    /// (runs ∪ runs stays runs via interval merging).
    pub(crate) fn union(&self, other: &Container) -> Container {
        use Container::{Array, Bitmap, Runs};
        match (self, other) {
            (Bitmap { words: wa, .. }, Bitmap { words: wb, .. }) => {
                metrics::words_scanned(2 * CHUNK_WORDS as u64);
                let mut words = Box::new([0u64; CHUNK_WORDS]);
                let mut card = 0usize;
                for ((o, &x), &y) in words.iter_mut().zip(wa.iter()).zip(wb.iter()) {
                    *o = x | y;
                    card += o.count_ones() as usize;
                }
                Container::Bitmap { words, card }
            }
            (Bitmap { words, .. }, other_c) | (other_c, Bitmap { words, .. }) => {
                let mut out = Box::new(**words);
                match other_c {
                    Array(a) => {
                        for &k in a {
                            out[usize::from(k >> 6)] |= 1u64 << (k & 63);
                        }
                    }
                    Runs(r) => {
                        for &(s, e) in r {
                            bitmap_set_range(&mut out, s, e);
                        }
                    }
                    Bitmap { .. } => {} // handled by the arm above
                }
                let card = out.iter().map(|w| w.count_ones() as usize).sum();
                Container::Bitmap { words: out, card }
            }
            (Runs(a), Runs(b)) => Container::Runs(union_runs(a, b)),
            (Array(a), Array(b)) => {
                let mut out = Vec::with_capacity(a.len() + b.len());
                let (mut i, mut j) = (0, 0);
                while i < a.len() || j < b.len() {
                    match (a.get(i), b.get(j)) {
                        (Some(&x), Some(&y)) if x < y => {
                            out.push(x);
                            i += 1;
                        }
                        (Some(&x), Some(&y)) if y < x => {
                            out.push(y);
                            j += 1;
                        }
                        (Some(&x), Some(_)) => {
                            out.push(x);
                            i += 1;
                            j += 1;
                        }
                        (Some(&x), None) => {
                            out.push(x);
                            i += 1;
                        }
                        (None, Some(&y)) => {
                            out.push(y);
                            j += 1;
                        }
                        (None, None) => {}
                    }
                }
                Container::from_sorted(&out)
            }
            (Runs(r), Array(a)) | (Array(a), Runs(r)) => {
                // Merge the array into the interval set, then re-pick the
                // canonical form (the merged result may no longer be
                // run-cheap).
                let mut runs = r.clone();
                for &k in a {
                    insert_into_runs(&mut runs, k);
                }
                let mut out = Container::Runs(runs);
                out.optimize();
                out
            }
        }
    }

    /// Number of keys strictly below `k`.
    pub(crate) fn rank(&self, k: u16) -> usize {
        match self {
            Container::Array(v) => v.partition_point(|&x| x < k),
            Container::Bitmap { words, .. } => {
                if k == 0 {
                    return 0;
                }
                let (count, touched) = bitmap_range_count(words, 0, k - 1);
                metrics::words_scanned(touched);
                count
            }
            Container::Runs(r) => {
                let mut count = 0;
                for &(s, e) in r {
                    if s >= k {
                        break;
                    }
                    count += usize::from(e.min(k - 1) - s) + 1;
                }
                count
            }
        }
    }

    /// The `i`-th smallest key (0-based), if `i < card`.
    pub(crate) fn select(&self, i: usize) -> Option<u16> {
        match self {
            Container::Array(v) => v.get(i).copied(),
            Container::Bitmap { words, card } => {
                if i >= *card {
                    return None;
                }
                let mut remaining = i;
                for (wi, &word) in words.iter().enumerate() {
                    let pop = word.count_ones() as usize;
                    if remaining < pop {
                        // Select the `remaining`-th set bit of `word` by
                        // clearing the lower set bits one at a time.
                        let mut w = word;
                        for _ in 0..remaining {
                            w &= w - 1;
                        }
                        return Some(((wi << 6) as u16) + w.trailing_zeros() as u16);
                    }
                    remaining -= pop;
                }
                None
            }
            Container::Runs(r) => {
                let mut remaining = i;
                for &(s, e) in r {
                    let len = usize::from(e - s) + 1;
                    if remaining < len {
                        return Some(s + remaining as u16);
                    }
                    remaining -= len;
                }
                None
            }
        }
    }

    /// Which physical form the container currently uses.
    pub(crate) fn kind(&self) -> metrics::Kind {
        match self {
            Container::Array(_) => metrics::Kind::Array,
            Container::Bitmap { .. } => metrics::Kind::Bitmap,
            Container::Runs(_) => metrics::Kind::Runs,
        }
    }

    /// Representation invariants of the current form.
    pub(crate) fn check_invariants(&self) -> Result<(), String> {
        match self {
            Container::Array(v) => {
                if v.is_empty() {
                    return Err("empty array container".into());
                }
                if v.len() > ARRAY_MAX {
                    return Err(format!("array container holds {} > {ARRAY_MAX} keys", v.len()));
                }
                for w in v.windows(2) {
                    if w[0] >= w[1] {
                        return Err(format!("array keys not increasing at {} >= {}", w[0], w[1]));
                    }
                }
            }
            Container::Bitmap { words, card } => {
                let real: usize = words.iter().map(|w| w.count_ones() as usize).sum();
                if real != *card {
                    return Err(format!("bitmap cached card {card} != popcount {real}"));
                }
                if *card < BITMAP_MIN {
                    return Err(format!("bitmap card {card} below demote floor {BITMAP_MIN}"));
                }
            }
            Container::Runs(r) => {
                if r.is_empty() {
                    return Err("empty runs container".into());
                }
                for &(s, e) in r {
                    if s > e {
                        return Err(format!("inverted run ({s}, {e})"));
                    }
                }
                for w in r.windows(2) {
                    if w[1].0 <= w[0].1 || w[1].0 - w[0].1 < 2 {
                        return Err(format!("runs {:?} and {:?} overlap or touch", w[0], w[1]));
                    }
                }
                if runs_bytes(r.len()) > BITMAP_BYTES {
                    return Err(format!("{} runs cost more than a bitmap", r.len()));
                }
            }
        }
        Ok(())
    }
}

/// Linear-merge overlap count of two sorted arrays, galloping through the
/// larger when the sizes are badly skewed (mirrors `NumKeySet`).
fn overlap_array_array(a: &[u16], b: &[u16]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len() >= 16 {
        let mut lo = 0usize;
        let mut count = 0usize;
        for &k in small {
            match large[lo..].binary_search(&k) {
                Ok(p) => {
                    count += 1;
                    lo += p + 1;
                }
                Err(p) => lo += p,
            }
            if lo >= large.len() {
                break;
            }
        }
        return count;
    }
    let (mut i, mut j) = (0, 0);
    let mut count = 0usize;
    while i < small.len() && j < large.len() {
        match small[i].cmp(&large[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Overlap count of an interval set against a sorted array: each run
/// contributes `rank(end+1) - rank(start)` of the array, computed with a
/// moving lower bound so the whole pass is `O(runs · log card)`.
fn overlap_runs_array(runs: &[(u16, u16)], a: &[u16]) -> usize {
    let mut count = 0usize;
    let mut i = 0usize;
    for &(s, e) in runs {
        i += a[i..].partition_point(|&k| k < s);
        let j = i + a[i..].partition_point(|&k| k <= e);
        count += j - i;
        i = j;
        if i >= a.len() {
            break;
        }
    }
    count
}

/// Overlap count of two interval sets: sum of pairwise overlap lengths.
fn overlap_runs_runs(a: &[(u16, u16)], b: &[(u16, u16)]) -> usize {
    let mut count = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let (s, e) = (a[i].0.max(b[j].0), a[i].1.min(b[j].1));
        if s <= e {
            count += usize::from(e - s) + 1;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    count
}

/// Insert one key into a sorted non-adjacent interval set, merging with
/// its neighbors when it closes a gap. Returns whether the key was new.
fn insert_into_runs(runs: &mut Vec<(u16, u16)>, k: u16) -> bool {
    let i = runs.partition_point(|&(s, _)| s <= k);
    if i > 0 && runs[i - 1].1 >= k {
        return false; // already inside run i-1
    }
    let extends_prev = i > 0 && k > 0 && runs[i - 1].1 == k - 1;
    let extends_next = i < runs.len() && k < u16::MAX && runs[i].0 == k + 1;
    match (extends_prev, extends_next) {
        (true, true) => {
            runs[i - 1].1 = runs[i].1;
            runs.remove(i);
        }
        (true, false) => runs[i - 1].1 = k,
        (false, true) => runs[i].0 = k,
        (false, false) => runs.insert(i, (k, k)),
    }
    true
}

/// Remove one key from a sorted interval set, splitting a run when the
/// key is interior. Returns whether the key was present.
fn remove_from_runs(runs: &mut Vec<(u16, u16)>, k: u16) -> bool {
    let i = runs.partition_point(|&(s, _)| s <= k);
    if i == 0 || runs[i - 1].1 < k {
        return false;
    }
    let (s, e) = runs[i - 1];
    match (s == k, e == k) {
        (true, true) => {
            runs.remove(i - 1);
        }
        (true, false) => runs[i - 1].0 = s + 1,
        (false, true) => runs[i - 1].1 = e - 1,
        (false, false) => {
            runs[i - 1].1 = k - 1;
            runs.insert(i, (k + 1, e));
        }
    }
    true
}

/// Interval union of two sorted non-adjacent interval sets.
fn union_runs(a: &[(u16, u16)], b: &[(u16, u16)]) -> Vec<(u16, u16)> {
    let mut out: Vec<(u16, u16)> = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => {
                if x.0 <= y.0 {
                    i += 1;
                    x
                } else {
                    j += 1;
                    y
                }
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => break,
        };
        match out.last_mut() {
            // Merge when overlapping or adjacent (gap of zero keys).
            Some(last) if next.0 <= last.1 || next.0 - last.1 <= 1 => {
                last.1 = last.1.max(next.1);
            }
            _ => out.push(next),
        }
    }
    out
}
