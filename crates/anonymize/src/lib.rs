//! Prefix-preserving IP anonymization and trusted-sharing workflows.
//!
//! The CAIDA Telescope archives CryptoPAN-anonymized traffic matrices
//! (Fan, Xu, Ammar & Moon, *Computer Networks* 2004). CryptoPAN maps IPv4
//! addresses through a keyed bijection that preserves prefixes: two
//! addresses share a `k`-bit anonymized prefix exactly when they share a
//! `k`-bit real prefix, so subnet structure survives anonymization while
//! identities do not.
//!
//! * [`aes`] — a from-scratch AES-128 block cipher (encrypt direction,
//!   which is all CryptoPAN needs), validated against the FIPS-197 vectors,
//! * [`cryptopan`] — the prefix-preserving anonymizer and its sequential
//!   inverse,
//! * [`memo`] — a memoized anonymizer that precomputes the top-16-bit
//!   prefix subtree into a flat table (16 AES calls per address instead of
//!   32, bit-identical output), used by the capture fast path,
//! * [`sharing`] — the three correlation workflows for anonymized data the
//!   paper lists: send-back deanonymization, a common third scheme, and a
//!   transformation table.
//!
//! ```
//! use obscor_anonymize::cryptopan::CryptoPan;
//!
//! let cp = CryptoPan::new(&[7u8; 32]);
//! let a = cp.anonymize(u32::from_be_bytes([10, 1, 2, 3]));
//! let b = cp.anonymize(u32::from_be_bytes([10, 1, 9, 9]));
//! // Same /16 in, same /16 out:
//! assert_eq!(a >> 16, b >> 16);
//! assert_eq!(cp.deanonymize(a), u32::from_be_bytes([10, 1, 2, 3]));
//! ```

pub mod aes;
pub mod cryptopan;
pub mod memo;
pub mod sharing;

pub use cryptopan::CryptoPan;
pub use memo::MemoCryptoPan;
