//! Fig 4: peak (coeval) correlation.
//!
//! "A first step is to ask what fraction of the CAIDA Telescope sources
//! are also seen in the GreyNoise observations during the same month."
//! For each log2 degree bin of a window, the fraction of its sources
//! present in the same-month honeyfarm row-key set, next to the paper's
//! empirical law `log2(d)/log2(sqrt(N_V))`.

use crate::degree::WindowDegrees;
use obscor_assoc::{BitSet, KeySet, NumKeySet};
use obscor_stats::binning::bin_representative;

/// One point of the Fig 4 curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PeakPoint {
    /// Bin index `i` (degrees in `(2^{i-1}, 2^i]`).
    pub bin: u32,
    /// Representative degree `d_i = 2^i`.
    pub d: u64,
    /// Sources in the bin.
    pub n_sources: usize,
    /// Fraction of the bin's sources present in the honeyfarm month.
    pub fraction: f64,
    /// The paper's empirical prediction
    /// `min(1, log2(d_i)/log2(sqrt(N_V)))`.
    pub empirical_law: f64,
}

/// The Fig 4 series for one window.
#[derive(Clone, Debug, PartialEq)]
pub struct PeakCorrelation {
    /// Window label.
    pub window_label: String,
    /// Month the fractions are taken against (the window's own month).
    pub month: usize,
    /// Per-bin points, in increasing degree order.
    pub points: Vec<PeakPoint>,
}

impl PeakCorrelation {
    /// The fraction at the bin containing degree `d`, if measured.
    pub fn fraction_at(&self, d: u64) -> Option<f64> {
        let bin = obscor_stats::binning::log2_bin(d);
        self.points.iter().find(|p| p.bin == bin).map(|p| p.fraction)
    }
}

/// Compute the Fig 4 series: per-bin overlap of `window` sources with the
/// coeval honeyfarm source set.
///
/// Dispatching wrapper: when every coeval key parses as a dotted-quad IP
/// (the [`obscor_assoc::convert::ip_key`] convention), the overlap runs on
/// the compressed-bitmap fast path ([`peak_correlation_bits`]); otherwise
/// it falls back to the string-keyed oracle ([`peak_correlation_str`]).
/// The sorted-vector path ([`peak_correlation_ip`]) is retained as the
/// numeric differential oracle; all three are bit-identical on parseable
/// keys. Callers holding the coeval set for many windows should convert
/// once and call the `_bits` variant directly.
pub fn peak_correlation(
    window: &WindowDegrees,
    coeval_sources: &KeySet,
    bright_log2: f64,
    min_bin_sources: usize,
) -> PeakCorrelation {
    match NumKeySet::from_key_set(coeval_sources) {
        Some(coeval) => peak_correlation_bits(
            window,
            &BitSet::from_num_key_set(&coeval),
            bright_log2,
            min_bin_sources,
        ),
        None => peak_correlation_str(window, coeval_sources, bright_log2, min_bin_sources),
    }
}

/// Compressed-bitmap fast path of [`peak_correlation`]: per-bin overlaps
/// are popcount-only [`BitSet::overlap_count`]s — word-parallel `AND` on
/// dense chunks, never materializing an intersection. The fraction
/// divides the same two integers as the sorted-vector path, so results
/// are bit-identical to [`peak_correlation_ip`].
pub fn peak_correlation_bits(
    window: &WindowDegrees,
    coeval_sources: &BitSet,
    bright_log2: f64,
    min_bin_sources: usize,
) -> PeakCorrelation {
    let _span = obscor_obs::span("core.peak_correlation");
    obscor_obs::counter("core.peak_correlation.windows_total").inc();
    let points = window
        .bin_bit_sets(min_bin_sources)
        .into_iter()
        .map(|(bin, keys)| {
            let d = bin_representative(bin);
            let fraction = keys.overlap_fraction(coeval_sources).unwrap_or(0.0);
            let empirical_law = ((d as f64).log2() / bright_log2).clamp(0.0, 1.0);
            PeakPoint { bin, d, n_sources: keys.len(), fraction, empirical_law }
        })
        .collect();
    PeakCorrelation { window_label: window.label.clone(), month: window.month, points }
}

/// Numeric fast path of [`peak_correlation`]: per-bin overlaps as `u32`
/// merge/gallop counts, no string allocation in the inner loop.
pub fn peak_correlation_ip(
    window: &WindowDegrees,
    coeval_sources: &NumKeySet,
    bright_log2: f64,
    min_bin_sources: usize,
) -> PeakCorrelation {
    let _span = obscor_obs::span("core.peak_correlation");
    obscor_obs::counter("core.peak_correlation.windows_total").inc();
    let points = window
        .bin_ip_sets(min_bin_sources)
        .into_iter()
        .map(|(bin, keys)| {
            let d = bin_representative(bin);
            let fraction = keys.overlap_fraction(coeval_sources).unwrap_or(0.0);
            let empirical_law = ((d as f64).log2() / bright_log2).clamp(0.0, 1.0);
            PeakPoint { bin, d, n_sources: keys.len(), fraction, empirical_law }
        })
        .collect();
    PeakCorrelation { window_label: window.label.clone(), month: window.month, points }
}

/// String-keyed path of [`peak_correlation`], kept as the differential
/// oracle for the numeric fast path (and the fallback for key sets whose
/// keys are not dotted-quad IPs).
pub fn peak_correlation_str(
    window: &WindowDegrees,
    coeval_sources: &KeySet,
    bright_log2: f64,
    min_bin_sources: usize,
) -> PeakCorrelation {
    let _span = obscor_obs::span("core.peak_correlation");
    obscor_obs::counter("core.peak_correlation.windows_total").inc();
    let points = window
        .bin_key_sets(min_bin_sources)
        .into_iter()
        .map(|(bin, keys)| {
            let d = bin_representative(bin);
            let fraction = keys.overlap_fraction(coeval_sources).unwrap_or(0.0);
            let empirical_law = ((d as f64).log2() / bright_log2).clamp(0.0, 1.0);
            PeakPoint { bin, d, n_sources: keys.len(), fraction, empirical_law }
        })
        .collect();
    PeakCorrelation { window_label: window.label.clone(), month: window.month, points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_assoc::KeySet;

    fn window_with_bins() -> WindowDegrees {
        // Sources 1..=8 with degree 2 (bin 1), sources 11..=18 with
        // degree 32 (bin 5).
        let mut degrees: Vec<(u32, u64)> = (1..=8u32).map(|ip| (ip, 2u64)).collect();
        degrees.extend((11..=18u32).map(|ip| (ip, 32u64)));
        WindowDegrees { label: "w".into(), coord: 4.5, month: 4, degrees }
    }

    fn keys_of(ips: &[u32]) -> KeySet {
        ips.iter().map(|&ip| obscor_assoc::convert::ip_key(ip)).collect()
    }

    #[test]
    fn fractions_count_overlap_per_bin() {
        let w = window_with_bins();
        // Honeyfarm saw half of each bin.
        let gn = keys_of(&[1, 2, 3, 4, 11, 12, 13, 14]);
        let peak = peak_correlation(&w, &gn, 8.0, 1);
        assert_eq!(peak.points.len(), 2);
        assert_eq!(peak.points[0].bin, 1);
        assert_eq!(peak.points[0].n_sources, 8);
        assert!((peak.points[0].fraction - 0.5).abs() < 1e-12);
        assert!((peak.points[1].fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empirical_law_is_log_linear_and_clamped() {
        let w = window_with_bins();
        let gn = KeySet::new();
        let peak = peak_correlation(&w, &gn, 4.0, 1);
        // Bin 1 (d=2): log2(2)/4 = 0.25; bin 5 (d=32): 5/4 clamped to 1.
        assert!((peak.points[0].empirical_law - 0.25).abs() < 1e-12);
        assert_eq!(peak.points[1].empirical_law, 1.0);
    }

    #[test]
    fn empty_honeyfarm_gives_zero_fractions() {
        let w = window_with_bins();
        let peak = peak_correlation(&w, &KeySet::new(), 8.0, 1);
        assert!(peak.points.iter().all(|p| p.fraction == 0.0));
    }

    #[test]
    fn min_sources_prunes_bins() {
        let mut w = window_with_bins();
        w.degrees.push((100, 1024)); // a lone bright source (bin 10)
        let peak = peak_correlation(&w, &KeySet::new(), 8.0, 2);
        assert!(peak.points.iter().all(|p| p.bin != 10));
    }

    #[test]
    fn numeric_and_string_paths_are_bit_identical() {
        let w = window_with_bins();
        let gn = keys_of(&[1, 2, 3, 11, 12, 13, 14, 99]);
        let via_str = peak_correlation_str(&w, &gn, 8.0, 1);
        let num = NumKeySet::from_key_set(&gn).unwrap();
        let via_num = peak_correlation_ip(&w, &num, 8.0, 1);
        assert_eq!(via_str, via_num);
        let via_bits =
            peak_correlation_bits(&w, &BitSet::from_num_key_set(&num), 8.0, 1);
        assert_eq!(via_num, via_bits);
        // The public entry point dispatches to the bitmap path here.
        assert_eq!(peak_correlation(&w, &gn, 8.0, 1), via_bits);
    }

    #[test]
    fn unparseable_keys_fall_back_to_the_string_path() {
        let w = window_with_bins();
        let gn: KeySet = ["scanner-x".to_string(), obscor_assoc::convert::ip_key(1)]
            .into_iter()
            .collect();
        assert!(NumKeySet::from_key_set(&gn).is_none());
        let peak = peak_correlation(&w, &gn, 8.0, 1);
        assert_eq!(peak.points[0].n_sources, 8);
        assert!((peak.points[0].fraction - 0.125).abs() < 1e-12);
    }

    #[test]
    fn fraction_at_looks_up_by_degree() {
        let w = window_with_bins();
        let gn = keys_of(&[1, 2]);
        let peak = peak_correlation(&w, &gn, 8.0, 1);
        assert!((peak.fraction_at(2).unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(peak.fraction_at(1 << 20), None);
    }
}
