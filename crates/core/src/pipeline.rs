//! The end-to-end analysis pipeline.

use crate::config::AnalysisConfig;
use crate::degree::WindowDegrees;
use crate::distribution::{degree_distribution, DegreeDistribution};
use crate::fitscan::{fit_curves, BinFit};
use crate::peak::{peak_correlation, peak_correlation_bits, PeakCorrelation};
use crate::classes::{class_correlation, ClassCorrelation};
use crate::scaling::source_scaling;
use crate::subnets::{aggregate_by_prefix, SubnetRow};
use crate::temporal::{temporal_curves, temporal_curves_bits, TemporalCurve};
use obscor_anonymize::sharing::Holder;
use obscor_assoc::{BitSet, KeySet, MonthMatrix, NumKeySet};
use obscor_honeyfarm::observe_all_months;
use obscor_hypersparse::reduce::NetworkQuantities;
use obscor_hypersparse::SpillReport;
use obscor_netmodel::Scenario;
use obscor_obs::MetricsSnapshot;
use obscor_telescope::{
    archive_window, capture_all_windows, inventory, matrix, InventoryRow, RecoveringRestore,
    RestoreReport,
};
use rayon::prelude::*;

/// One GreyNoise row of Table I.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GreyNoiseInventoryRow {
    /// Month label (`YYYY-MM`).
    pub label: String,
    /// Sources detected that month.
    pub sources: usize,
}

/// Fig 1: which traffic-matrix quadrants each instrument populates.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QuadrantSummary {
    /// Telescope: external → internal entries (the only darkspace quadrant).
    pub telescope_ext_to_int: u64,
    /// Telescope: internal → external entries (must be zero — darkspaces
    /// never transmit).
    pub telescope_int_to_ext: u64,
    /// Honeyfarm: sources it *received* from (external → internal).
    pub honeyfarm_ext_to_int: u64,
    /// Honeyfarm: sources it *responded to* (internal → external — the
    /// engagement conversations that exist because an outpost answers).
    pub honeyfarm_int_to_ext: u64,
}

/// Everything needed to print every table and figure of the paper.
#[derive(Clone, Debug)]
pub struct PaperAnalysis {
    /// Window size.
    pub n_v: usize,
    /// `log2 sqrt(N_V)` — the Fig 4 knee.
    pub bright_log2: f64,
    /// Table I, CAIDA side.
    pub caida_inventory: Vec<InventoryRow>,
    /// Table I, GreyNoise side.
    pub greynoise_inventory: Vec<GreyNoiseInventoryRow>,
    /// Table II quantities per window.
    pub quantities: Vec<(String, NetworkQuantities)>,
    /// Fig 1 quadrant occupancy.
    pub quadrants: QuadrantSummary,
    /// Fig 3 per window.
    pub distributions: Vec<DegreeDistribution>,
    /// Fig 2's wider quantity menu on the first window: binned
    /// distributions of fan-out, fan-in, destination packets, and link
    /// packets.
    pub quantity_distributions: Vec<(String, DegreeDistribution)>,
    /// Fig 4 per window.
    pub peaks: Vec<PeakCorrelation>,
    /// Figs 5/6 raw curves (window × bin).
    pub curves: Vec<TemporalCurve>,
    /// Figs 5-8 fits.
    pub fits: Vec<BinFit>,
    /// Enrichment-aware extension: the class structure of each window's
    /// coeval overlap (scanner/botnet/backscatter/misconfig shares).
    pub class_structure: Vec<ClassCorrelation>,
    /// Subnet extension: top /16 prefixes per window by packets (the
    /// prefix-preserving-anonymization payoff).
    pub subnet_top: Vec<(String, Vec<SubnetRow>)>,
    /// Scaling extension: per-window sources-vs-packets exponent and R²
    /// (the paper's `sources ∝ N_V^{1/2}` observation).
    pub scaling: Vec<(String, f64, f64)>,
    /// Archive-path accounting: one [`RestoreReport`] per window when the
    /// matrices were built through the archive → restore path
    /// (`AnalysisConfig::archive`); empty on the direct path. Downstream
    /// statistics are computed over the surviving leaves, so each
    /// report's coverage fraction bounds how much of the window those
    /// statistics saw.
    pub restore: Vec<RestoreReport>,
    /// Out-of-core accounting: one [`SpillReport`] per window when the
    /// matrices were built under a memory budget
    /// (`AnalysisConfig::spill`); empty on the in-memory paths. The
    /// matrices are bit-identical to the direct build, so the reports
    /// carry only eviction/reload traffic and peak-footprint numbers.
    pub spill: Vec<SpillReport>,
    /// Per-run observability: every counter, gauge, and span timing the
    /// pipeline recorded (the change in the global registry over this
    /// run). Serializes with [`MetricsSnapshot::to_json`]; written out by
    /// the CLI's `--metrics` flag.
    pub metrics: MetricsSnapshot,
}

/// Run the complete paper pipeline on a scenario.
///
/// Stages (parallel where data-independent):
/// 1. capture the five constant-packet telescope windows,
/// 2. build hierarchical traffic matrices; compute Table II quantities and
///    the Fig 1 quadrant check,
/// 3. reduce to per-source degrees and deanonymize via the send-back
///    workflow,
/// 4. observe the fifteen honeyfarm months,
/// 5. per window: Fig 3 distribution + ZM fit, Fig 4 coeval correlation,
///    Figs 5/6 temporal curves,
/// 6. fit every curve (Figs 5-8).
pub fn run(scenario: &Scenario, config: &AnalysisConfig) -> PaperAnalysis {
    // Scope this run's metrics against the process-global registry so
    // `PaperAnalysis::metrics` reports only what this call recorded (the
    // registry outlives the run — e.g. across parallel tests).
    let metrics_baseline = obscor_obs::snapshot();
    let pipeline_span = obscor_obs::span("pipeline.run");
    obscor_obs::gauge("config.n_v").set_max(scenario.n_v as u64);
    obscor_obs::gauge("config.window_count").set_max(scenario.caida_windows.len() as u64);
    obscor_obs::gauge("config.month_count").set_max(scenario.grid.len() as u64);
    obscor_obs::gauge("config.min_bin_sources").set_max(config.min_bin_sources as u64);

    let holder = Holder::new("telescope-operator", &holder_key(scenario.seed));

    // 1-2. Capture and matrix per window.
    let windows = {
        let _s = obscor_obs::span("stage.capture");
        capture_all_windows(scenario)
    };
    obscor_obs::counter("stage.capture.windows_total").add(windows.len() as u64);
    let caida_inventory = inventory(&windows);
    let mut spill_reports: Vec<SpillReport> = Vec::new();
    let (matrices, restore): (Vec<_>, Vec<RestoreReport>) = match &config.archive {
        None => match &config.spill {
            None => {
                let _s = obscor_obs::span("stage.matrices");
                (windows.par_iter().map(matrix::build_matrix).collect(), Vec::new())
            }
            Some(sp) => {
                // Out-of-core build: each window folds under the
                // configured live-byte budget, evicting carry parts to
                // disk. Serial across windows — the budget is per fold,
                // and running folds concurrently would multiply the
                // process footprint the budget exists to bound.
                let _s = obscor_obs::span("stage.matrices_spilled");
                let mut built = Vec::with_capacity(windows.len());
                for w in &windows {
                    match matrix::build_matrix_spilled(
                        w,
                        Some(sp.memory_budget),
                        sp.spill_dir.as_deref(),
                    ) {
                        Ok((m, report)) => {
                            spill_reports.push(report);
                            built.push(m);
                        }
                        // An unusable spill directory degrades to the
                        // in-memory build (bit-identical, just bigger).
                        Err(_) => built.push(matrix::build_matrix(w)),
                    }
                }
                obscor_obs::counter("stage.matrices.spill_windows_total")
                    .add(spill_reports.len() as u64);
                obscor_obs::counter("stage.matrices.spill_evictions_total")
                    .add(spill_reports.iter().map(|r| r.stats.evictions).sum());
                (built, Vec::new())
            }
        },
        Some(ac) => {
            // The paper's production shape: each window is serialized
            // into leaf matrices (optionally injured by the configured
            // fault plan) and rebuilt through the recovering restore;
            // downstream stages see whatever survived, and the reports
            // say exactly how much that was.
            let _s = obscor_obs::span("stage.matrices_archived");
            let restorer = RecoveringRestore::new(ac.retry);
            let (matrices, reports): (Vec<_>, Vec<RestoreReport>) = windows
                .par_iter()
                .map(|w| {
                    let archive = archive_window(w, ac.n_leaves);
                    match &ac.fault_plan {
                        None => restorer.restore(&archive),
                        Some(plan) => restorer.restore(&plan.apply(&archive)),
                    }
                })
                .unzip();
            obscor_obs::counter("stage.matrices.archive_windows_total")
                .add(reports.len() as u64);
            obscor_obs::counter("stage.matrices.archive_quarantined_total")
                .add(reports.iter().map(|r| r.quarantined.len() as u64).sum());
            (matrices, reports)
        }
    };
    obscor_obs::counter("stage.matrices.built_total").add(matrices.len() as u64);
    obscor_obs::counter("stage.matrices.nnz_total")
        .add(matrices.iter().map(|m| m.nnz() as u64).sum());
    let quantities: Vec<(String, NetworkQuantities)> = {
        let _s = obscor_obs::span("stage.quantities");
        windows
            .iter()
            .zip(&matrices)
            .map(|(w, m)| (w.label.clone(), NetworkQuantities::compute(m)))
            .collect()
    };
    obscor_obs::counter("stage.quantities.computed_total").add(quantities.len() as u64);
    if cfg!(any(debug_assertions, feature = "strict-invariants")) {
        for (m, (label, q)) in matrices.iter().zip(&quantities) {
            stage_check(label, m.check_invariants());
            stage_check(label, q.check_invariants());
        }
    }

    // 3. Degrees through the anonymization workflow (reusing the
    // already-built matrices).
    let degrees: Vec<WindowDegrees> = {
        let _s = obscor_obs::span("stage.degrees");
        windows
            .par_iter()
            .zip(&matrices)
            .map(|(w, m)| {
                let month = (w.coord.floor() as usize).min(scenario.grid.len() - 1);
                WindowDegrees::from_matrix(&w.label, w.coord, month, m, &holder)
            })
            .collect()
    };
    obscor_obs::counter("stage.degrees.windows_total").add(degrees.len() as u64);

    // 4. Honeyfarm months.
    let months = {
        let _s = obscor_obs::span("stage.honeyfarm");
        observe_all_months(scenario)
    };
    obscor_obs::counter("stage.honeyfarm.months_total").add(months.len() as u64);
    let greynoise_inventory: Vec<GreyNoiseInventoryRow> = months
        .iter()
        .map(|m| GreyNoiseInventoryRow { label: m.label.clone(), sources: m.n_sources() })
        .collect();
    let monthly_sources: Vec<KeySet> =
        months.iter().map(|m| m.source_keys().clone()).collect();
    // Numeric mirror of the monthly key sets, converted once. `None`
    // (a month with non-IP keys) falls back to the string path.
    let monthly_ip: Option<Vec<NumKeySet>> =
        monthly_sources.iter().map(NumKeySet::from_key_set).collect();
    // Compressed substrate, also built once per analysis: per-month
    // BitSets for the coeval (peak) stage and one month×source membership
    // matrix for the temporal stage's one-sweep overlap counts. Both are
    // bit-identical to the sorted-vector mirror they derive from.
    let monthly_bits: Option<Vec<BitSet>> = monthly_ip
        .as_ref()
        .map(|months| months.iter().map(BitSet::from_num_key_set).collect());
    let month_matrix: Option<MonthMatrix> =
        monthly_bits.as_ref().map(|bits| MonthMatrix::from_bit_sets(bits));
    if cfg!(any(debug_assertions, feature = "strict-invariants")) {
        for (m, keys) in months.iter().zip(&monthly_sources) {
            stage_check(&m.label, m.assoc.check_invariants());
            stage_check(&m.label, keys.check_invariants());
        }
        if let (Some(ip), Some(bits), Some(mm)) = (&monthly_ip, &monthly_bits, &month_matrix) {
            stage_check("month-matrix", mm.check_invariants());
            for (m, (nks, bs)) in ip.iter().zip(bits).enumerate() {
                stage_check("monthly-bits", bs.check_invariants());
                // The compressed mirror answers exactly like the vector:
                // same cardinality (matrix rows included), and rank/select
                // agree on the extremes.
                let consistent = bs.len() == nks.len()
                    && mm.month_len(m) == nks.len()
                    && bs.select(0) == nks.as_slice().first().copied()
                    && nks.as_slice().last().is_none_or(|&k| bs.rank(k) == nks.len() - 1);
                stage_check(
                    "monthly-bits",
                    consistent
                        .then_some(())
                        .ok_or_else(|| format!("month {m}: compressed mirror diverged")),
                );
            }
        }
    }

    // Fig 1 quadrant occupancy.
    let _quadrant_span = obscor_obs::span("stage.quadrants");
    let telescope_ext_to_int: u64 =
        matrices.iter().map(|m| m.nnz() as u64).sum();
    let honeyfarm_engaged: u64 = months
        .iter()
        .map(|m| {
            m.assoc
                .iter()
                .filter(|(_, c, v)| *c == "handshake" && *v == "true")
                .count() as u64
        })
        .sum();
    let honeyfarm_seen: u64 = months.iter().map(|m| m.n_sources() as u64).sum();
    let quadrants = QuadrantSummary {
        telescope_ext_to_int,
        telescope_int_to_ext: 0, // asserted structurally: darkspace rows are external-only
        honeyfarm_ext_to_int: honeyfarm_seen,
        honeyfarm_int_to_ext: honeyfarm_engaged,
    };
    obscor_obs::counter("stage.quadrants.entries_total").add(
        quadrants.telescope_ext_to_int
            + quadrants.honeyfarm_ext_to_int
            + quadrants.honeyfarm_int_to_ext,
    );
    drop(_quadrant_span);

    // 5. Per-window analyses.
    let distributions: Vec<DegreeDistribution> = {
        let _s = obscor_obs::span("stage.distributions");
        degrees.par_iter().map(|wd| degree_distribution(wd, config)).collect()
    };
    obscor_obs::counter("stage.distributions.computed_total").add(distributions.len() as u64);
    // Fig 2: the wider quantity menu, on the first window's matrix.
    let quantity_distributions: Vec<(String, DegreeDistribution)> = match matrices.first() {
        None => Vec::new(),
        Some(m) => {
            use crate::distribution::binned_distribution;
            use obscor_hypersparse::reduce;
            let label = &windows[0].label;
            vec![
                (
                    "source fan-out".to_string(),
                    binned_distribution(
                        label,
                        reduce::source_fan_out(m).into_iter().map(|(_, d)| d),
                        config,
                    ),
                ),
                (
                    "destination fan-in".to_string(),
                    binned_distribution(
                        label,
                        reduce::destination_fan_in(m).into_iter().map(|(_, d)| d),
                        config,
                    ),
                ),
                (
                    "destination packets".to_string(),
                    binned_distribution(
                        label,
                        reduce::destination_packets(m).into_iter().map(|(_, d)| d),
                        config,
                    ),
                ),
                (
                    "link packets".to_string(),
                    binned_distribution(
                        label,
                        m.values().iter().copied(),
                        config,
                    ),
                ),
            ]
        }
    };
    let peaks: Vec<PeakCorrelation> = {
        let _s = obscor_obs::span("stage.peaks");
        degrees
            .par_iter()
            .map(|wd| match &monthly_bits {
                // audit:allow(blocking-in-par) — chain ends at the obs registry name-lookup mutex, a leaf lock with an O(1) critical section; same justification as the baselined oracle arm below
                Some(months) => peak_correlation_bits(
                    wd,
                    &months[wd.month],
                    scenario.bright_log2(),
                    config.min_bin_sources,
                ),
                None => peak_correlation(
                    wd,
                    &monthly_sources[wd.month],
                    scenario.bright_log2(),
                    config.min_bin_sources,
                ),
            })
            .collect()
    };
    obscor_obs::counter("stage.peaks.computed_total").add(peaks.len() as u64);
    let curves: Vec<TemporalCurve> = {
        let _s = obscor_obs::span("stage.curves");
        degrees
            .par_iter()
            .flat_map(|wd| match &month_matrix {
                // audit:allow(blocking-in-par) — chain ends at the obs registry name-lookup mutex, a leaf lock with an O(1) critical section; same justification as the baselined oracle arm below
                Some(mm) => temporal_curves_bits(wd, mm, config.min_bin_sources),
                None => temporal_curves(wd, &monthly_sources, config.min_bin_sources),
            })
            .collect()
    };
    obscor_obs::counter("stage.curves.computed_total").add(curves.len() as u64);

    // 6. Fits.
    let fits = {
        let _s = obscor_obs::span("stage.fits");
        fit_curves(&curves, config)
    };
    obscor_obs::counter("stage.fits.fitted_total").add(fits.len() as u64);

    // Enrichment-aware extension: class split of the coeval overlap.
    let class_structure: Vec<ClassCorrelation> =
        degrees.iter().map(|wd| class_correlation(wd, &months[wd.month])).collect();

    // Scaling extension: sources-vs-packets exponent per window.
    let scaling: Vec<(String, f64, f64)> = windows
        .iter()
        .filter_map(|w| {
            source_scaling(&w.window.packets, 8)
                .map(|l| (w.label.clone(), l.exponent, l.r_squared))
        })
        .collect();

    // Subnet extension: top /16s per window.
    let subnet_top: Vec<(String, Vec<SubnetRow>)> = degrees
        .iter()
        .map(|wd| {
            let mut rows = aggregate_by_prefix(wd, 16);
            rows.truncate(5);
            (wd.label.clone(), rows)
        })
        .collect();

    // Close the whole-run span, then freeze this run's metric delta.
    drop(pipeline_span);
    let metrics = obscor_obs::snapshot().delta_since(&metrics_baseline);

    PaperAnalysis {
        n_v: scenario.n_v,
        bright_log2: scenario.bright_log2(),
        caida_inventory,
        greynoise_inventory,
        quantities,
        quadrants,
        distributions,
        quantity_distributions,
        peaks,
        curves,
        fits,
        class_structure,
        subnet_top,
        scaling,
        restore,
        spill: spill_reports,
        metrics,
    }
}

/// Abort on a stage-boundary invariant violation. Runs in debug builds
/// and whenever the `strict-invariants` feature is enabled; callers skip
/// the checks entirely otherwise.
fn stage_check(label: &str, result: Result<(), String>) {
    if let Err(msg) = result {
        // audit:allow(panic-path) — invariant violations are programming errors; aborting is the stage contract
        panic!("pipeline invariant violated at stage `{label}`: {msg}");
    }
}

/// Derive the telescope operator's CryptoPAN key from the scenario seed
/// (deterministic, but distinct from every model RNG stream).
fn holder_key(seed: u64) -> [u8; 32] {
    let mut key = [0u8; 32];
    let mut x = seed ^ 0xA5A5_5A5A_DEAD_BEEF;
    for chunk in key.chunks_exact_mut(8) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        chunk.copy_from_slice(&x.to_le_bytes());
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn analysis() -> &'static (Scenario, PaperAnalysis) {
        static A: OnceLock<(Scenario, PaperAnalysis)> = OnceLock::new();
        A.get_or_init(|| {
            let s = Scenario::paper_scaled(1 << 15, 11);
            let a = run(&s, &AnalysisConfig::fast());
            (s, a)
        })
    }

    #[test]
    fn inventories_have_paper_shape() {
        let (_, a) = analysis();
        assert_eq!(a.caida_inventory.len(), 5);
        assert_eq!(a.greynoise_inventory.len(), 15);
        assert!(a.greynoise_inventory.iter().all(|r| r.sources > 0));
    }

    #[test]
    fn table2_quantities_are_consistent() {
        let (s, a) = analysis();
        for (_, q) in &a.quantities {
            assert_eq!(q.valid_packets, s.n_v as u64);
            assert!(q.unique_sources > 0);
            assert!(q.unique_links >= q.unique_sources);
            assert!(q.max_source_packets <= q.valid_packets);
        }
    }

    #[test]
    fn quadrant_occupancy_matches_fig1() {
        let (_, a) = analysis();
        assert!(a.quadrants.telescope_ext_to_int > 0);
        assert_eq!(a.quadrants.telescope_int_to_ext, 0);
        assert!(a.quadrants.honeyfarm_ext_to_int > 0);
        assert!(a.quadrants.honeyfarm_int_to_ext > 0);
        // The honeyfarm engages a subset of what it sees.
        assert!(a.quadrants.honeyfarm_int_to_ext <= a.quadrants.honeyfarm_ext_to_int);
    }

    #[test]
    fn greynoise_config_change_months_spike() {
        let (_, a) = analysis();
        let normal = a.greynoise_inventory[0].sources as f64;
        let boosted = a.greynoise_inventory[1].sources as f64;
        assert!(boosted > normal * 1.5, "2020-03 spike missing: {boosted} vs {normal}");
    }

    #[test]
    fn figures_are_populated() {
        let (_, a) = analysis();
        assert_eq!(a.distributions.len(), 5);
        assert_eq!(a.peaks.len(), 5);
        assert!(!a.curves.is_empty());
        assert!(!a.fits.is_empty());
        assert!(a.distributions.iter().all(|d| d.fit.is_some()));
    }

    #[test]
    fn bright_sources_are_nearly_always_coeval_detected() {
        let (_, a) = analysis();
        // Fig 4 headline: bins at/above the sqrt(N_V) knee have fractions
        // near 1.
        let mut checked = 0;
        for peak in &a.peaks {
            for p in &peak.points {
                if (p.d as f64) >= 2f64.powf(a.bright_log2) {
                    assert!(
                        p.fraction > 0.85,
                        "bright bin d={} fraction {}",
                        p.d,
                        p.fraction
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no bright bins had enough sources");
    }

    #[test]
    fn faint_fraction_tracks_empirical_law() {
        let (_, a) = analysis();
        let mut total_err = 0.0;
        let mut n = 0;
        for peak in &a.peaks {
            for p in &peak.points {
                if p.n_sources >= 30 {
                    total_err += (p.fraction - p.empirical_law).abs();
                    n += 1;
                }
            }
        }
        assert!(n > 0);
        let mean_err = total_err / n as f64;
        assert!(mean_err < 0.15, "mean |measured - law| = {mean_err}");
    }

    #[test]
    fn temporal_curves_decay_from_peak() {
        let (_, a) = analysis();
        let mut decays = 0;
        for c in &a.curves {
            if c.n_sources < 30 {
                continue;
            }
            let peak = c.peak_fraction();
            let far = c
                .lags
                .iter()
                .zip(&c.fractions)
                .filter(|(l, _)| l.abs() > 5.0)
                .map(|(_, f)| *f)
                .fold(0.0f64, f64::max);
            if peak > far {
                decays += 1;
            }
        }
        assert!(decays >= a.curves.len() / 3, "too few decaying curves: {decays}");
    }

    #[test]
    fn run_is_deterministic() {
        let (s, a) = analysis();
        let b = run(s, &AnalysisConfig::fast());
        assert_eq!(a.greynoise_inventory, b.greynoise_inventory);
        assert_eq!(a.curves, b.curves);
    }

    #[test]
    fn direct_path_records_no_restore_reports() {
        let (_, a) = analysis();
        assert!(a.restore.is_empty());
        assert!(a.spill.is_empty());
    }

    #[test]
    fn spill_path_matches_the_direct_path_bit_for_bit() {
        use crate::config::SpillSettings;
        let s = Scenario::paper_scaled(1 << 13, 11);
        let direct = run(&s, &AnalysisConfig::fast());
        // Budget 0: nothing may stay resident, every carry evicts.
        let spilled = run(&s, &AnalysisConfig::fast().with_spill(SpillSettings::with_budget(0)));
        assert_eq!(spilled.spill.len(), 5);
        for r in &spilled.spill {
            assert!(r.is_exact(), "clean spill must restore exactly: {r:?}");
            assert!(r.stats.evictions > 0, "budget 0 must evict: {r:?}");
            r.check_invariants().unwrap();
        }
        assert_eq!(direct.quantities, spilled.quantities);
        assert_eq!(direct.curves, spilled.curves);
        assert_eq!(direct.peaks, spilled.peaks);
    }

    #[test]
    fn archive_path_without_faults_matches_the_direct_path() {
        use crate::config::ArchiveConfig;
        let s = Scenario::paper_scaled(1 << 13, 11);
        let direct = run(&s, &AnalysisConfig::fast());
        let archived =
            run(&s, &AnalysisConfig::fast().with_archive(ArchiveConfig::with_leaves(8)));
        assert_eq!(archived.restore.len(), 5);
        for r in &archived.restore {
            assert!(r.is_complete(), "clean archive must restore completely: {r:?}");
            r.check_invariants().unwrap();
        }
        assert_eq!(direct.quantities, archived.quantities);
        assert_eq!(direct.curves, archived.curves);
        assert_eq!(direct.peaks, archived.peaks);
    }

    #[test]
    fn faulted_archive_path_degrades_with_accounting() {
        use crate::config::ArchiveConfig;
        use obscor_telescope::FaultPlan;
        let s = Scenario::paper_scaled(1 << 13, 11);
        let cfg = AnalysisConfig::fast()
            .with_archive(ArchiveConfig::with_fault_plan(FaultPlan::new(7, 0.4).unwrap()));
        let a = run(&s, &cfg);
        assert_eq!(a.restore.len(), 5);
        assert!(
            a.restore.iter().any(|r| !r.is_complete()),
            "seed 7 at rate 0.4 must injure at least one window"
        );
        for (r, (_, q)) in a.restore.iter().zip(&a.quantities) {
            r.check_invariants().unwrap();
            // Downstream statistics really did run on the surviving
            // leaves: Table II's packet count equals what the restore
            // says it recovered.
            assert_eq!(q.valid_packets, r.packets_restored);
            assert!(r.coverage() <= 1.0);
        }
    }
}
