//! Leaf-matrix archival.
//!
//! "The CAIDA Telescope archives its trillions of collected packets at
//! the supercomputing center at Lawrence Berkeley National Laboratory
//! where the packets are aggregated into CryptoPAN anonymized GraphBLAS
//! traffic matrices of `N_V = 2^17` valid contiguous packets. The
//! `N_V = 2^30` traffic matrices used in this study are constructed by
//! hierarchically summing `2^13` of these smaller matrices."
//!
//! [`WindowArchive`] is that storage layer: a captured window is split
//! into contiguous leaf matrices (optionally CryptoPAN-anonymized), each
//! serialized with the compact binary codec; restoration decodes the
//! leaves and re-sums them with a parallel merge tree, reproducing the
//! full window matrix bit for bit.

use crate::capture::TelescopeWindow;
use obscor_anonymize::CryptoPan;
use obscor_hypersparse::serialize::{decode, encode, CodecError};
use obscor_hypersparse::{ops, Coo, Csr};

/// A window stored as encoded leaf matrices.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowArchive {
    /// Table I window label.
    pub label: String,
    /// Packets per leaf.
    pub leaf_nv: usize,
    /// Serialized leaf matrices, in capture order.
    pub leaves: Vec<Vec<u8>>,
}

impl WindowArchive {
    /// Total serialized size in bytes.
    pub fn byte_size(&self) -> usize {
        self.leaves.iter().map(|l| l.len()).sum()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.leaves.len()
    }
}

/// Archive a window into `n_leaves` contiguous leaf matrices with an
/// optional index map (CryptoPAN anonymization).
///
/// # Panics
/// Panics if `n_leaves == 0`.
pub fn archive_window_with(
    w: &TelescopeWindow,
    n_leaves: usize,
    map: impl Fn(u32) -> u32,
) -> WindowArchive {
    assert!(n_leaves > 0, "need at least one leaf");
    let total = w.window.packets.len();
    let leaf_nv = total.div_ceil(n_leaves);
    let leaves = w
        .window
        .packets
        .chunks(leaf_nv.max(1))
        .map(|chunk| {
            let mut coo = Coo::with_capacity(chunk.len());
            for p in chunk {
                coo.push(map(p.src.0), map(p.dst.0), 1u64);
            }
            encode(&coo.into_csr())
        })
        .collect();
    WindowArchive { label: w.label.clone(), leaf_nv, leaves }
}

/// Archive with raw indices.
pub fn archive_window(w: &TelescopeWindow, n_leaves: usize) -> WindowArchive {
    archive_window_with(w, n_leaves, |ip| ip)
}

/// Archive under a CryptoPAN key (what the paper's archive stores).
pub fn archive_window_anonymized(
    w: &TelescopeWindow,
    n_leaves: usize,
    cp: &CryptoPan,
) -> WindowArchive {
    // Memoize: windows touch each unique address many times and CryptoPAN
    // costs 32 AES calls per fresh address.
    let mut memo = std::collections::HashMap::new();
    let mut map = move |ip: u32, cp: &CryptoPan| *memo.entry(ip).or_insert_with(|| cp.anonymize(ip));
    let total = w.window.packets.len();
    let leaf_nv = total.div_ceil(n_leaves.max(1));
    let leaves = w
        .window
        .packets
        .chunks(leaf_nv.max(1))
        .map(|chunk| {
            let mut coo = Coo::with_capacity(chunk.len());
            for p in chunk {
                coo.push(map(p.src.0, cp), map(p.dst.0, cp), 1u64);
            }
            encode(&coo.into_csr())
        })
        .collect();
    WindowArchive { label: w.label.clone(), leaf_nv, leaves }
}

/// Restore the full window matrix: decode every leaf and re-sum with the
/// parallel merge tree.
pub fn restore_matrix(archive: &WindowArchive) -> Result<Csr<u64>, CodecError> {
    let _span = obscor_obs::span("telescope.restore_matrix");
    obscor_obs::counter("telescope.restore.leaves_total").add(archive.n_leaves() as u64);
    let leaves: Result<Vec<Csr<u64>>, CodecError> =
        archive.leaves.iter().map(|bytes| decode(bytes)).collect();
    Ok(ops::merge_all(leaves?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capture::capture_window;
    use crate::matrix;
    use obscor_hypersparse::reduce;
    use obscor_netmodel::Scenario;
    use std::sync::OnceLock;

    fn window() -> &'static TelescopeWindow {
        static W: OnceLock<TelescopeWindow> = OnceLock::new();
        W.get_or_init(|| {
            let s = Scenario::paper_scaled(1 << 14, 61);
            capture_window(&s, &s.caida_windows[0])
        })
    }

    #[test]
    fn restore_reproduces_the_window_matrix() {
        let w = window();
        let direct = matrix::build_matrix(w);
        for n_leaves in [1usize, 2, 8, 64] {
            let archive = archive_window(w, n_leaves);
            assert_eq!(archive.n_leaves(), n_leaves.min(w.packets()));
            let restored = restore_matrix(&archive).unwrap();
            assert_eq!(restored, direct, "n_leaves = {n_leaves}");
        }
    }

    #[test]
    fn leaves_partition_the_packets() {
        let w = window();
        let archive = archive_window(w, 16);
        let total: u64 = archive
            .leaves
            .iter()
            .map(|b| reduce::valid_packets(&decode::<u64>(b).unwrap()))
            .sum();
        assert_eq!(total, w.packets() as u64);
    }

    #[test]
    fn anonymized_archive_preserves_quantities() {
        let w = window();
        let cp = CryptoPan::new(&[0x44u8; 32]);
        let anon = restore_matrix(&archive_window_anonymized(w, 8, &cp)).unwrap();
        let raw = matrix::build_matrix(w);
        assert_eq!(
            reduce::NetworkQuantities::compute(&anon),
            reduce::NetworkQuantities::compute(&raw)
        );
        assert_ne!(anon.row_keys(), raw.row_keys());
    }

    #[test]
    fn tampered_leaf_is_detected() {
        let w = window();
        let mut archive = archive_window(w, 4);
        archive.leaves[2][0] ^= 0xFF; // smash the magic
        assert!(restore_matrix(&archive).is_err());
    }

    #[test]
    fn archive_size_is_bounded_by_entries() {
        let w = window();
        let archive = archive_window(w, 8);
        // 16 bytes/entry + 16/leaf header; entries <= packets.
        let cap = 16 * w.packets() + archive.n_leaves() * 16;
        assert!(archive.byte_size() <= cap);
    }
}
