//! Source-file model for the audit pass.
//!
//! Rust source is loaded once and preprocessed into a form the rules can
//! scan without tripping over comments, string literals, or test code:
//!
//! * [`SourceFile::code`] is the original text with every comment and every
//!   string/char literal blanked out (replaced by spaces, newlines kept),
//!   so byte offsets and line numbers still line up with the original.
//! * [`SourceFile::toks`] / [`SourceFile::delims`] / [`SourceFile::items`]
//!   are the token stream, delimiter match table, and item tree produced by
//!   [`crate::lex`] and [`crate::parse`] over the blanked code — the
//!   substrate every rule scans.
//! * [`SourceFile::test_lines`] marks lines inside `#[cfg(test)]` /
//!   `#[test]` items, derived from the parsed item tree — project rules
//!   apply to *library* code only.
//! * [`SourceFile::allows`] carries `audit:allow(<rule>)` markers collected
//!   from comments. A marker suppresses the named rule on its own line and
//!   on the following line, so it can sit either inline or just above the
//!   code it justifies. Markers must carry a non-empty trailing
//!   justification; bare markers are themselves findings
//!   (`allow-justification`), recorded in [`SourceFile::allow_sites`].
//! * [`SourceFile::ordering_notes`] carries `// ordering:` comments — the
//!   justification text the `atomic-ordering` rule requires next to every
//!   `Ordering::*` site. A note covers its own line and the next.

use std::collections::HashSet;
use std::path::PathBuf;

use crate::lex::{lex, match_delims, Tok};
use crate::parse::{parse_items, test_line_mask, Item};

/// One `audit:allow(<rule>)` marker occurrence.
#[derive(Debug, Clone)]
pub struct AllowSite {
    /// 1-based line the marker sits on.
    pub line: usize,
    /// Rule name inside the parentheses.
    pub rule: String,
    /// Whether a non-empty justification follows the closing paren.
    pub justified: bool,
}

/// A preprocessed Rust source file.
pub struct SourceFile {
    /// Absolute (or caller-relative) path used for reading.
    pub path: PathBuf,
    /// Workspace-relative path used in diagnostics.
    pub rel: String,
    /// Original text.
    pub raw: String,
    /// Text with comments and string/char literals blanked.
    pub code: String,
    /// Token stream over the blanked code.
    pub toks: Vec<Tok>,
    /// `toks[i]`'s matching delimiter index (see [`crate::lex::match_delims`]).
    pub delims: Vec<usize>,
    /// Parsed item tree (parents precede children).
    pub items: Vec<Item>,
    /// Number of lines in the file.
    pub n_lines: usize,
    /// 1-based line -> set of rule names allowed on that line.
    pub allows: Vec<HashSet<String>>,
    /// Every allow-marker occurrence, for the justification meta-rule.
    pub allow_sites: Vec<AllowSite>,
    /// 1-based line -> `// ordering:` note text starting on that line.
    pub ordering_notes: Vec<Option<String>>,
    /// 1-based line -> true when the line belongs to test-only code.
    pub test_lines: Vec<bool>,
}

impl SourceFile {
    /// Load and preprocess one file. `rel` is the path shown in diagnostics.
    pub fn load(path: PathBuf, rel: String) -> std::io::Result<Self> {
        let raw = std::fs::read_to_string(&path)?;
        Ok(Self::from_source(path, rel, raw))
    }

    /// Preprocess in-memory source (used by the fixture tests).
    pub fn from_source(path: PathBuf, rel: String, raw: String) -> Self {
        let code = blank_comments_and_strings(&raw);
        let n_lines = raw.lines().count();
        // Line tables are 1-based: slot 0 is unused, slots 1..=n_lines are
        // the file's lines — exactly n_lines + 1 entries.
        let mut allows = vec![HashSet::new(); n_lines + 1];
        let mut allow_sites = Vec::new();
        let mut ordering_notes = vec![None; n_lines + 1];
        for (i, line) in raw.lines().enumerate() {
            let line_no = i + 1;
            for (rule, justified) in parse_allow_markers(line) {
                allows[line_no].insert(rule.clone());
                if line_no < n_lines {
                    allows[line_no + 1].insert(rule.clone());
                }
                allow_sites.push(AllowSite { line: line_no, rule, justified });
            }
            if let Some(note) = parse_ordering_note(line) {
                ordering_notes[line_no] = Some(note);
            }
        }
        let toks = lex(&code);
        let delims = match_delims(&toks, &code);
        let items = parse_items(&code, &toks, &delims);
        let test_lines = if toks.is_empty() {
            vec![false; n_lines + 1]
        } else {
            test_line_mask(&items, &toks, n_lines)
        };
        Self {
            path,
            rel,
            raw,
            code,
            toks,
            delims,
            items,
            n_lines,
            allows,
            allow_sites,
            ordering_notes,
            test_lines,
        }
    }

    /// Lines of the blanked code, 1-based alongside their line numbers.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.code.lines().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// Whether `rule` is suppressed on `line` (1-based).
    pub fn is_allowed(&self, rule: &str, line: usize) -> bool {
        self.allows.get(line).is_some_and(|s| s.contains(rule))
    }

    /// Whether `line` (1-based) is test-only code.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_lines.get(line).copied().unwrap_or(false)
    }

    /// The `// ordering:` note covering `line`, if any — a note covers its
    /// own line and the next (so it can sit inline or just above).
    pub fn ordering_note(&self, line: usize) -> Option<&str> {
        if let Some(Some(note)) = self.ordering_notes.get(line) {
            return Some(note);
        }
        if line >= 1 {
            if let Some(Some(note)) = self.ordering_notes.get(line - 1) {
                return Some(note);
            }
        }
        None
    }

    /// Text of token `i` (slice of the blanked code).
    pub fn tok_text(&self, i: usize) -> &str {
        let t = &self.toks[i];
        &self.code[t.start..t.end]
    }

    /// 1-based line of token `i`.
    pub fn tok_line(&self, i: usize) -> usize {
        self.toks[i].line
    }
}

/// Extract every `audit:allow(<rule>)` marker on a line, together with
/// whether a non-empty justification follows the closing paren (after
/// trimming separator punctuation: spaces, dashes, colons).
fn parse_allow_markers(line: &str) -> Vec<(String, bool)> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(at) = rest.find("audit:allow(") {
        let tail = &rest[at + "audit:allow(".len()..];
        if let Some(close) = tail.find(')') {
            let rule = tail[..close].trim();
            let after = &tail[close + 1..];
            // The justification runs to the end of the comment (or the
            // next marker, for multi-marker lines).
            let just_end = after.find("audit:allow(").unwrap_or(after.len());
            let justification = after[..just_end]
                .trim_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '–' | '-' | ':' | ';' | ','));
            if !rule.is_empty() {
                out.push((rule.to_string(), !justification.is_empty()));
            }
            rest = &tail[close + 1..];
        } else {
            break;
        }
    }
    out
}

/// Extract the `// ordering:` note text from a raw line, if present.
fn parse_ordering_note(line: &str) -> Option<String> {
    let at = line.find("// ordering:")?;
    let note = line[at + "// ordering:".len()..].trim();
    if note.is_empty() {
        None
    } else {
        Some(note.to_string())
    }
}

/// Replace comments and string/char literal *contents* with spaces,
/// preserving newlines so line numbers are unchanged.
fn blank_comments_and_strings(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;

    // Helper closures operate on `out`: push the original byte, or a blank.
    fn blank(b: u8) -> u8 {
        if b == b'\n' {
            b'\n'
        } else {
            b' '
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        // Line comment.
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(blank(bytes[i]));
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if b == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let mut depth = 1;
            out.push(b' ');
            out.push(b' ');
            i += 2;
            while i < bytes.len() && depth > 0 {
                if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
                    depth += 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if bytes[i] == b'*' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                    depth -= 1;
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else {
                    out.push(blank(bytes[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string literal r"..." / r#"..."# (and byte-raw br...).
        if b == b'r' || (b == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'r') {
            let start = if b == b'b' { i + 1 } else { i };
            let mut j = start + 1;
            let mut hashes = 0;
            while j < bytes.len() && bytes[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'"' && is_token_boundary(bytes, i) {
                // Emit the prefix verbatim, blank the contents.
                for &pb in &bytes[i..=j] {
                    out.push(pb);
                }
                i = j + 1;
                'raw: while i < bytes.len() {
                    if bytes[i] == b'"' {
                        let mut k = i + 1;
                        let mut seen = 0;
                        while k < bytes.len() && bytes[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            for &pb in &bytes[i..k] {
                                out.push(pb);
                            }
                            i = k;
                            break 'raw;
                        }
                    }
                    out.push(blank(bytes[i]));
                    i += 1;
                }
                continue;
            }
        }
        // Ordinary string literal (and b"...").
        if b == b'"' || (b == b'b' && i + 1 < bytes.len() && bytes[i + 1] == b'"') {
            if b == b'b' {
                out.push(b'b');
                i += 1;
            }
            out.push(b'"');
            i += 1;
            while i < bytes.len() {
                if bytes[i] == b'\\' && i + 1 < bytes.len() {
                    out.push(b' ');
                    out.push(b' ');
                    i += 2;
                } else if bytes[i] == b'"' {
                    out.push(b'"');
                    i += 1;
                    break;
                } else {
                    out.push(blank(bytes[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' or '\n' is a char; 'a (no closing
        // quote within two chars) is a lifetime.
        if b == b'\'' {
            if i + 2 < bytes.len() && bytes[i + 1] == b'\\' {
                // Escaped char literal: skip to closing quote.
                out.push(b'\'');
                i += 1;
                while i < bytes.len() && bytes[i] != b'\'' {
                    out.push(b' ');
                    i += 1;
                }
                if i < bytes.len() {
                    out.push(b'\'');
                    i += 1;
                }
                continue;
            }
            if i + 2 < bytes.len() && bytes[i + 2] == b'\'' {
                out.push(b'\'');
                out.push(b' ');
                out.push(b'\'');
                i += 3;
                continue;
            }
            // Lifetime: keep the tick, scanning continues normally.
            out.push(b'\'');
            i += 1;
            continue;
        }
        out.push(b);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// A raw-string prefix must not be glued to a preceding identifier
/// (`writer"x"` is not a raw string; `r"x"` after a boundary is).
fn is_token_boundary(bytes: &[u8], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = bytes[i - 1];
    !(prev.is_ascii_alphanumeric() || prev == b'_')
}

/// True when `tok` occurs in `s` as a whole identifier-ish token.
pub fn has_token(s: &str, tok: &str) -> bool {
    find_token(s, tok, 0).is_some()
}

/// Offset of the first whole-token occurrence of `tok` at/after `from`.
pub fn find_token(s: &str, tok: &str, from: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut at = from;
    while let Some(pos) = s.get(at..).and_then(|h| h.find(tok)).map(|p| p + at) {
        let before_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let after = pos + tok.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return Some(pos);
        }
        at = pos + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn prep(src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("mem.rs"), "mem.rs".into(), src.to_string())
    }

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = prep("let x = \"panic!(boo)\"; // unwrap() here\nlet y = 1;\n");
        assert!(!f.code.contains("panic!"));
        assert!(!f.code.contains("unwrap"));
        assert!(f.code.contains("let y = 1;"));
        assert_eq!(f.code.lines().count(), f.raw.lines().count());
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = prep("let p = r#\"x as u32\"#; let q = 2;\n");
        assert!(!f.code.contains("as u32"));
        assert!(f.code.contains("let q = 2;"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let f = prep("fn f<'a>(x: &'a str) -> char { 'y' }\nlet z = '\\n';\n");
        assert!(f.code.contains("fn f<'a>(x: &'a str)"));
        assert!(!f.code.contains('y'));
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let f = prep(src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
    }

    #[test]
    fn allow_markers_cover_their_line_and_the_next() {
        let src = "// audit:allow(panic-path) — justified\nx.unwrap();\ny.unwrap();\n";
        let f = prep(src);
        assert!(f.is_allowed("panic-path", 1));
        assert!(f.is_allowed("panic-path", 2));
        assert!(!f.is_allowed("panic-path", 3));
    }

    #[test]
    fn allow_markers_track_justifications() {
        let f = prep("// audit:allow(panic-path) — bounded by construction\n// audit:allow(float-eq)\n// audit:allow(key-pack) —  \n");
        let by_rule: Vec<(&str, bool)> =
            f.allow_sites.iter().map(|s| (s.rule.as_str(), s.justified)).collect();
        assert_eq!(
            by_rule,
            vec![("panic-path", true), ("float-eq", false), ("key-pack", false)]
        );
    }

    #[test]
    fn line_tables_match_file_length_exactly() {
        // Trailing newline: 3 lines, tables hold slots 0..=3.
        let f = prep("a();\nb();\nc();\n");
        assert_eq!(f.n_lines, 3);
        assert_eq!(f.allows.len(), 4);
        assert_eq!(f.ordering_notes.len(), 4);
        // No trailing newline: same 3 lines, same table sizes, and a
        // marker on the final line still registers.
        let g = prep("a();\nb();\nx(); // audit:allow(panic-path) — last line");
        assert_eq!(g.n_lines, 3);
        assert_eq!(g.allows.len(), 4);
        assert!(g.is_allowed("panic-path", 3));
        assert!(!g.is_test_line(3));
        // Empty file: only the unused slot 0.
        let e = prep("");
        assert_eq!(e.n_lines, 0);
        assert_eq!(e.allows.len(), 1);
    }

    #[test]
    fn ordering_notes_cover_their_line_and_the_next() {
        let src = "// ordering: monotonic counter, no cross-thread edge\nc.fetch_add(1, Ordering::Relaxed);\nd.load(Ordering::Relaxed);\n";
        let f = prep(src);
        assert_eq!(f.ordering_note(1), Some("monotonic counter, no cross-thread edge"));
        assert_eq!(f.ordering_note(2), Some("monotonic counter, no cross-thread edge"));
        assert_eq!(f.ordering_note(3), None);
    }

    #[test]
    fn token_stream_and_items_are_built() {
        let f = prep("fn f() { let x = 1; }\n");
        assert!(!f.toks.is_empty());
        assert_eq!(f.items.len(), 1);
        assert_eq!(f.items[0].name, "f");
        assert_eq!(f.tok_text(0), "fn");
        assert_eq!(f.tok_line(0), 1);
    }

    #[test]
    fn token_search_respects_boundaries() {
        assert!(has_token("x as u32", "u32"));
        assert!(!has_token("x as u32x", "u32"));
        assert!(!has_token("au32", "u32"));
        assert_eq!(find_token("u32 u32", "u32", 1), Some(4));
    }
}
