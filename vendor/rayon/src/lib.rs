//! Offline stand-in for `rayon`.
//!
//! The build environment has no crates.io access, so this crate provides the
//! exact parallel-iterator surface the workspace uses — `par_iter`,
//! `into_par_iter`, `par_chunks`, `par_sort_unstable_by_key`, and
//! [`join`] — executed **sequentially**. Because every call site in the
//! workspace uses these APIs for order-independent map/collect work, the
//! sequential execution is observationally identical (and the
//! `StreamingBuilder` concurrency path still exercises real threads via
//! `std::thread`).
//!
//! The adapters return ordinary [`std::iter::Iterator`]s, so the full std
//! combinator set (`map`, `zip`, `flat_map`, `filter_map`, `collect`, …)
//! is available exactly as it is on rayon's parallel iterators.

#![forbid(unsafe_code)]

/// Run two closures (sequentially here; in parallel in real rayon) and
/// return both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The traits a `use rayon::prelude::*` is expected to bring into scope.
pub mod prelude {
    /// `collection.par_iter()` — borrowing pseudo-parallel iteration.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Iterate by reference ("in parallel").
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, C: ?Sized + 'data> IntoParallelRefIterator<'data> for C
    where
        &'data C: IntoIterator,
    {
        type Iter = <&'data C as IntoIterator>::IntoIter;
        fn par_iter(&'data self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// `collection.into_par_iter()` — consuming pseudo-parallel iteration.
    pub trait IntoParallelIterator {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Iterate by value ("in parallel").
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<C: IntoIterator> IntoParallelIterator for C {
        type Iter = C::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Chunked slice access (`par_chunks`).
    pub trait ParallelSlice<T> {
        /// Non-overlapping chunks of up to `chunk_size` elements.
        ///
        /// # Panics
        /// Panics if `chunk_size == 0`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    /// In-place slice sorts (`par_sort*`).
    pub trait ParallelSliceMut<T> {
        /// Sort ("in parallel") — stable.
        fn par_sort(&mut self)
        where
            T: Ord;
        /// Sort ("in parallel") — unstable.
        fn par_sort_unstable(&mut self)
        where
            T: Ord;
        /// Sort unstable by key ("in parallel").
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
        /// Sort stable by key ("in parallel").
        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F);
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_sort(&mut self)
        where
            T: Ord,
        {
            self.sort();
        }
        fn par_sort_unstable(&mut self)
        where
            T: Ord,
        {
            self.sort_unstable();
        }
        fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
            self.sort_unstable_by_key(key);
        }
        fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, key: F) {
            self.sort_by_key(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: i32 = (0..5).into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn par_sort_sorts() {
        let mut v = vec![3u32, 1, 2];
        v.par_sort_unstable_by_key(|&x| x);
        assert_eq!(v, vec![1, 2, 3]);
    }

    #[test]
    fn join_returns_both() {
        assert_eq!(super::join(|| 1, || "x"), (1, "x"));
    }
}
