// Audit fixture: a clean library file; the audit must report nothing.

pub fn total(v: &[u32]) -> u64 {
    v.iter().map(|&x| u64::from(x)).sum()
}

pub fn checked_index(i: u64) -> Option<u32> {
    u32::try_from(i).ok()
}

pub fn narrow(b: u8) -> u32 {
    // A cast with a provably narrow source is not a violation.
    b as u32
}

pub fn annotated(v: &[u8]) -> u32 {
    // audit:allow(index-cast) — length is bounded by the 16-bit packet size
    v.len() as u32
}
