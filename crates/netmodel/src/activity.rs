//! Drifting-beam churn: heavy-tailed activity intervals.
//!
//! Each source is active on a single interval `[birth, birth + L)` with a
//! Pareto-distributed lifetime `L`. For a stationary population (births
//! spread uniformly so that activity probability is flat over the study
//! span), the probability that a source active at `t0` is still active at
//! `t0 + τ` is the stationary residual-life survival function, which for
//! Pareto lifetimes decays linearly near zero and as a power law in the
//! tail — the modified-Cauchy shape `β/(β + |τ|^α)` the paper fits, with
//! `β` growing with the Pareto scale.
//!
//! Brightness couples in through the scale: bright sources live longer
//! (`x_m` rises with `log2 d`), which reproduces Fig 8's falling one-month
//! drop. A small per-month revisit probability models re-infected or
//! recurring hosts and produces the long-lag background level visible in
//! Fig 5.

use rand::{Rng, RngExt};

/// One contiguous activity interval in model months.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ActivityInterval {
    /// Start of activity (months; may precede the study span).
    pub birth: f64,
    /// End of activity (exclusive).
    pub end: f64,
}

impl ActivityInterval {
    /// Construct; `end < birth` is clamped to an empty interval.
    pub fn new(birth: f64, end: f64) -> Self {
        Self { birth, end: end.max(birth) }
    }

    /// Lifetime in months.
    pub fn lifetime(&self) -> f64 {
        self.end - self.birth
    }

    /// Whether the source is active at instant `t`.
    pub fn active_at(&self, t: f64) -> bool {
        self.birth <= t && t < self.end
    }

    /// Whether the interval intersects `[lo, hi)`.
    pub fn overlaps(&self, lo: f64, hi: f64) -> bool {
        self.birth < hi && lo < self.end
    }

    /// Fraction of `[lo, hi)` covered by the interval.
    pub fn overlap_fraction(&self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let inter = (self.end.min(hi) - self.birth.max(lo)).max(0.0);
        inter / (hi - lo)
    }
}

/// The churn process: Pareto lifetimes over a fixed study span.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnModel {
    /// Pareto shape `a > 1` (tail heaviness of lifetimes; `a = 2` gives a
    /// `1/τ` overlap tail, i.e. effective modified-Cauchy `α ≈ 1`).
    pub pareto_shape: f64,
    /// Study span in months; births are spread so activity is stationary
    /// across `[0, span]`.
    pub span: f64,
}

impl ChurnModel {
    /// Construct.
    ///
    /// # Panics
    /// Panics unless `pareto_shape > 1` and `span > 0`.
    pub fn new(pareto_shape: f64, span: f64) -> Self {
        assert!(pareto_shape > 1.0, "Pareto shape must exceed 1 for finite mean lifetimes");
        assert!(span > 0.0, "span must be positive");
        Self { pareto_shape, span }
    }

    /// Draw a Pareto(`shape`, `scale`) lifetime in months.
    pub fn sample_lifetime<R: Rng + ?Sized>(&self, scale: f64, rng: &mut R) -> f64 {
        debug_assert!(scale > 0.0);
        let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
        scale / u.powf(1.0 / self.pareto_shape)
    }

    /// Draw a stationary activity interval with Pareto scale `x_m`:
    /// lifetime from the Pareto, birth uniform on `[-L, span]` so the
    /// probability of being active is flat over the span.
    pub fn sample_interval<R: Rng + ?Sized>(&self, x_m: f64, rng: &mut R) -> ActivityInterval {
        let l = self.sample_lifetime(x_m, rng);
        let birth = rng.random_range(-l..self.span);
        ActivityInterval::new(birth, birth + l)
    }

    /// The analytic overlap kernel `P(active at t0+τ | active at t0)` of
    /// the sampled process, for Pareto(`a`, `x_m`) lifetimes.
    ///
    /// For a source with lifetime `L` and birth uniform on `[-L, span]`,
    /// the probability of covering an interior instant `t0` is
    /// `L/(L+span)` and the residual life given coverage is uniform on
    /// `[0, L]`, so
    ///
    /// ```text
    ///            ∫ f(L) (L−τ)⁺/(L+span) dL
    /// K(τ)  =   ---------------------------
    ///            ∫ f(L)  L   /(L+span) dL
    /// ```
    ///
    /// evaluated here by log-spaced trapezoidal quadrature. In the
    /// `span → ∞` limit this reduces to the classic stationary-renewal
    /// residual-life kernel, which for Pareto tails is a linear decay into
    /// a `τ^{1−a}` power law — the modified-Cauchy shape with effective
    /// `α = a − 1`.
    pub fn analytic_overlap(&self, x_m: f64, tau: f64) -> f64 {
        let a = self.pareto_shape;
        let t = tau.abs();
        // Pareto pdf f(L) = a x_m^a / L^{a+1} on [x_m, ∞).
        let pdf = |l: f64| a * x_m.powf(a) / l.powf(a + 1.0);
        let upper = x_m * 1.0e5;
        let steps = 4000usize;
        let ratio = (upper / x_m).powf(1.0 / steps as f64);
        let (mut num, mut den) = (0.0f64, 0.0f64);
        let mut l = x_m;
        for _ in 0..steps {
            let r = l * ratio;
            let mid = (l * r).sqrt();
            let w = r - l;
            let f = pdf(mid);
            den += f * mid / (mid + self.span) * w;
            num += f * (mid - t).max(0.0) / (mid + self.span) * w;
            l = r;
        }
        (num / den).min(1.0)
    }
}

/// Brightness calibration: the Pareto scale (months) for a source whose
/// expected window degree is `d`, tuned so the measured one-month drop
/// reproduces Fig 8: the drop *peaks* near 50 % at the mid-brightness
/// knee (`d ≈ 10^3` for `N_V = 2^30`) and stays above 20 % elsewhere.
///
/// The calibration is V-shaped in lifetime: the dim tail (backscatter,
/// misconfigurations) is long-lived background, mid-brightness scanners
/// churn fastest, and the brightest beam is stable scanning
/// infrastructure. `knee_log2d` is where churn is fastest,
/// `bright_log2d` (`log2 sqrt(N_V)`) where the bright plateau begins.
pub fn pareto_scale_for_brightness(log2_d: f64, knee_log2d: f64, bright_log2d: f64) -> f64 {
    // One-month drop ≈ (a-1)/(a·x_m) (infinite-span, τ ≤ x_m):
    // for a = 1.4, x_m = 0.6 → ~48 %, x_m = 1.8 → ~16 %.
    let (x_slow, x_fast) = (1.8, 0.6);
    let d = log2_d.max(0.0);
    if d <= knee_log2d {
        // Dim side: slow background easing into the churn knee.
        let t = (d / knee_log2d.max(1e-9)).clamp(0.0, 1.0);
        x_slow + (x_fast - x_slow) * t
    } else if d >= bright_log2d {
        x_slow
    } else {
        let t = (d - knee_log2d) / (bright_log2d - knee_log2d);
        x_fast + (x_slow - x_fast) * t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn interval_membership() {
        let iv = ActivityInterval::new(1.0, 3.0);
        assert!(iv.active_at(1.0));
        assert!(iv.active_at(2.9));
        assert!(!iv.active_at(3.0));
        assert!(!iv.active_at(0.99));
        assert_eq!(iv.lifetime(), 2.0);
    }

    #[test]
    fn interval_overlap_fraction() {
        let iv = ActivityInterval::new(1.0, 3.0);
        assert_eq!(iv.overlap_fraction(0.0, 1.0), 0.0);
        assert_eq!(iv.overlap_fraction(1.0, 2.0), 1.0);
        assert_eq!(iv.overlap_fraction(2.5, 3.5), 0.5);
        assert!(iv.overlaps(2.5, 3.5));
        assert!(!iv.overlaps(3.0, 4.0));
    }

    #[test]
    fn degenerate_interval_is_empty() {
        let iv = ActivityInterval::new(2.0, 1.0);
        assert_eq!(iv.lifetime(), 0.0);
        assert!(!iv.active_at(2.0));
    }

    #[test]
    fn lifetimes_respect_pareto_scale() {
        let churn = ChurnModel::new(2.0, 15.0);
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let lifetimes: Vec<f64> = (0..n).map(|_| churn.sample_lifetime(1.5, &mut rng)).collect();
        assert!(lifetimes.iter().all(|&l| l >= 1.5));
        // P(L > 2·x_m) = (1/2)^a = 0.25 for a = 2.
        let tail = lifetimes.iter().filter(|&&l| l > 3.0).count() as f64 / n as f64;
        assert!((tail - 0.25).abs() < 0.02, "tail fraction {tail}");
    }

    #[test]
    fn activity_is_stationary_over_span() {
        let churn = ChurnModel::new(2.0, 15.0);
        let mut rng = StdRng::seed_from_u64(2);
        let intervals: Vec<ActivityInterval> =
            (0..40_000).map(|_| churn.sample_interval(1.0, &mut rng)).collect();
        let frac_at = |t: f64| {
            intervals.iter().filter(|iv| iv.active_at(t)).count() as f64 / intervals.len() as f64
        };
        let (a, b, c) = (frac_at(1.0), frac_at(7.5), frac_at(14.0));
        assert!((a - b).abs() < 0.02, "activity drifts: {a} vs {b}");
        assert!((b - c).abs() < 0.02, "activity drifts: {b} vs {c}");
    }

    #[test]
    fn sampled_overlap_matches_analytic_kernel() {
        let churn = ChurnModel::new(2.0, 15.0);
        let x_m = 1.5;
        let mut rng = StdRng::seed_from_u64(3);
        let t0 = 7.0;
        let intervals: Vec<ActivityInterval> = (0..200_000)
            .map(|_| churn.sample_interval(x_m, &mut rng))
            .filter(|iv| iv.active_at(t0))
            .collect();
        assert!(intervals.len() > 10_000);
        for tau in [0.5, 1.0, 2.0, 4.0] {
            let got = intervals.iter().filter(|iv| iv.active_at(t0 + tau)).count() as f64
                / intervals.len() as f64;
            let expect = churn.analytic_overlap(x_m, tau);
            assert!(
                (got - expect).abs() < 0.02,
                "tau {tau}: sampled {got:.3} vs analytic {expect:.3}"
            );
        }
    }

    #[test]
    fn analytic_kernel_shape() {
        let churn = ChurnModel::new(2.0, 15.0);
        // Unit value at zero lag, monotone decay, symmetric.
        assert!((churn.analytic_overlap(1.0, 0.0) - 1.0).abs() < 1e-12);
        let k1 = churn.analytic_overlap(1.0, 1.0);
        let k2 = churn.analytic_overlap(1.0, 2.0);
        assert!(k1 > k2);
        assert_eq!(churn.analytic_overlap(1.0, -1.0), k1);
        // One-month drop near 1/2 for x_m = 1, a = 2 (the Fig 8 maximum;
        // the finite 15-month span raises the infinite-span value of 0.5 a
        // little by down-weighting very long lifetimes).
        let drop_dim = 1.0 - k1;
        assert!((0.45..=0.62).contains(&drop_dim), "dim drop {drop_dim}");
        // And near 20 % for x_m = 2.5 — the bright-end value.
        let drop_bright = 1.0 - churn.analytic_overlap(2.5, 1.0);
        assert!((0.15..=0.3).contains(&drop_bright), "bright drop {drop_bright}");
        assert!(drop_bright < drop_dim);
    }

    #[test]
    fn brightness_calibration_is_v_shaped() {
        let knee = 10.0;
        let bright = 15.0;
        // Fastest churn exactly at the knee (floating-point interpolation
        // lands within an ulp of the configured scale).
        assert!((pareto_scale_for_brightness(10.0, knee, bright) - 0.6).abs() < 1e-12);
        // Slow background at both extremes.
        assert_eq!(pareto_scale_for_brightness(0.0, knee, bright), 1.8);
        assert_eq!(pareto_scale_for_brightness(15.0, knee, bright), 1.8);
        assert_eq!(pareto_scale_for_brightness(20.0, knee, bright), 1.8);
        // Monotone on each side of the knee.
        let dim_mid = pareto_scale_for_brightness(5.0, knee, bright);
        let bright_mid = pareto_scale_for_brightness(12.5, knee, bright);
        assert!(dim_mid > 0.6 && dim_mid < 1.8);
        assert!(bright_mid > 0.6 && bright_mid < 1.8);
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn shallow_pareto_rejected() {
        let _ = ChurnModel::new(1.0, 15.0);
    }
}
