//! Property-based tests for the hypersparse matrix substrate.

use obscor_hypersparse::{
    hier, ops, reduce, serialize, spgemm, Coo, Csr, Dcsc, HierarchicalAccumulator, Index,
};
use proptest::prelude::*;

fn arb_triples() -> impl Strategy<Value = Vec<(Index, Index, u64)>> {
    prop::collection::vec(
        (0u32..2_000, 0u32..2_000, 1u64..16),
        0..400,
    )
}

fn build(triples: &[(Index, Index, u64)]) -> Csr<u64> {
    Coo::from_triples(triples.iter().copied()).into_csr()
}

/// Keys that mix the full u32 range (exercising every radix digit) with a
/// tiny range (forcing heavy duplication), and values that include
/// explicit zeros (which compaction must drop).
fn arb_radix_key() -> impl Strategy<Value = Index> {
    (any::<u32>(), any::<bool>()).prop_map(|(x, small)| if small { x % 8 } else { x })
}

fn arb_radix_triples() -> impl Strategy<Value = Vec<(Index, Index, u64)>> {
    prop::collection::vec((arb_radix_key(), arb_radix_key(), 0u64..4), 0..600)
}

proptest! {
    /// Serial and parallel COO compaction must agree exactly.
    #[test]
    fn compaction_paths_agree(t in arb_triples()) {
        let a = Coo::from_triples(t.iter().copied()).into_csr_serial();
        let b = Coo::from_triples(t.iter().copied()).into_csr_parallel();
        prop_assert_eq!(a, b);
    }

    /// The radix compaction kernel is bit-identical to the serial
    /// comparison sort over arbitrary triples — duplicates (summed),
    /// explicit zeros (dropped), full-range keys, and empty lists — and
    /// its output satisfies every structural invariant.
    #[test]
    fn radix_equals_serial_compaction(t in arb_radix_triples()) {
        let serial = Coo::from_triples(t.iter().copied()).into_csr_serial();
        let radix = Coo::from_triples(t.iter().copied()).into_csr_radix();
        prop_assert!(radix.check_invariants().is_ok());
        prop_assert_eq!(serial, radix);
    }

    /// Zero-sum cancellation: f64 duplicates that sum to zero vanish from
    /// the radix output exactly as they do from the serial oracle.
    #[test]
    fn radix_drops_cancelled_f64_entries(t in arb_radix_triples()) {
        let signed = |v: u64| -> f64 {
            // Map 0..4 onto {-1.0, -0.5, 0.5, 1.0} so duplicate keys can
            // cancel exactly in binary floating point.
            [-1.0, -0.5, 0.5, 1.0][(v % 4) as usize]
        };
        let serial: Csr<f64> = Coo::from_triples(
            t.iter().map(|&(r, c, v)| (r, c, signed(v))),
        )
        .into_csr_serial();
        let radix: Csr<f64> = Coo::from_triples(
            t.iter().map(|&(r, c, v)| (r, c, signed(v))),
        )
        .into_csr_radix();
        prop_assert_eq!(serial, radix);
    }

    /// Hierarchical accumulation equals flat accumulation regardless of
    /// leaf size.
    #[test]
    fn hierarchical_equals_flat(t in arb_triples(), leaf in 1usize..64) {
        let mut acc = HierarchicalAccumulator::with_leaf_capacity(leaf);
        acc.extend(t.iter().copied());
        prop_assert_eq!(acc.finalize(), hier::accumulate_flat(t));
    }

    /// Every structural invariant holds after construction.
    #[test]
    fn invariants_hold(t in arb_triples()) {
        prop_assert!(build(&t).check_invariants().is_ok());
    }

    /// Transposition is an involution.
    #[test]
    fn transpose_involution(t in arb_triples()) {
        let a = build(&t);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    /// Element-wise addition is commutative.
    #[test]
    fn ewise_add_commutative(t1 in arb_triples(), t2 in arb_triples()) {
        let (a, b) = (build(&t1), build(&t2));
        prop_assert_eq!(ops::ewise_add(&a, &b), ops::ewise_add(&b, &a));
    }

    /// Element-wise addition is associative.
    #[test]
    fn ewise_add_associative(
        t1 in arb_triples(), t2 in arb_triples(), t3 in arb_triples()
    ) {
        let (a, b, c) = (build(&t1), build(&t2), build(&t3));
        let left = ops::ewise_add(&ops::ewise_add(&a, &b), &c);
        let right = ops::ewise_add(&a, &ops::ewise_add(&b, &c));
        prop_assert_eq!(left, right);
    }

    /// Valid packets is additive over ewise_add.
    #[test]
    fn valid_packets_additive(t1 in arb_triples(), t2 in arb_triples()) {
        let (a, b) = (build(&t1), build(&t2));
        let c = ops::ewise_add(&a, &b);
        prop_assert_eq!(
            reduce::valid_packets(&c),
            reduce::valid_packets(&a) + reduce::valid_packets(&b)
        );
    }

    /// Every Table II aggregate is invariant under simultaneous row/column
    /// permutation — the anonymization-invariance claim of the paper.
    #[test]
    fn quantities_invariant_under_permutation(t in arb_triples(), key in any::<u32>()) {
        let a = build(&t);
        // A Feistel-ish bijection on u32: xor-rotate with the key. Any
        // bijection works; this one is cheap and key-dependent.
        let p = |i: Index| (i ^ key).rotate_left(7);
        let b = ops::permute(&a, p);
        prop_assert_eq!(
            reduce::NetworkQuantities::compute(&a),
            reduce::NetworkQuantities::compute(&b)
        );
    }

    /// Degree *distributions* (not just maxima) are permutation-invariant:
    /// the multiset of source packet counts survives anonymization.
    #[test]
    fn degree_multiset_invariant_under_permutation(t in arb_triples(), key in any::<u32>()) {
        let a = build(&t);
        let b = ops::permute(&a, |i| (i ^ key).rotate_left(11));
        let mut da: Vec<u64> = reduce::source_packets(&a).into_iter().map(|(_, d)| d).collect();
        let mut db: Vec<u64> = reduce::source_packets(&b).into_iter().map(|(_, d)| d).collect();
        da.sort_unstable();
        db.sort_unstable();
        prop_assert_eq!(da, db);
    }

    /// Binary codec round-trips exactly.
    #[test]
    fn codec_round_trip(t in arb_triples()) {
        let a = build(&t);
        prop_assert_eq!(serialize::decode::<u64>(&serialize::encode(&a)).unwrap(), a);
    }

    /// Zero-norm is idempotent and preserves the pattern.
    #[test]
    fn zero_norm_idempotent(t in arb_triples()) {
        let a = build(&t);
        let z = ops::zero_norm(&a);
        prop_assert_eq!(z.nnz(), a.nnz());
        prop_assert_eq!(ops::zero_norm(&z).clone(), z);
    }

    /// DCSC round-trips and answers column-side quantities identically.
    #[test]
    fn dcsc_round_trip_and_reductions(t in arb_triples()) {
        let a = build(&t);
        let d = Dcsc::from_csr(&a);
        prop_assert_eq!(d.to_csr(), a.clone());
        prop_assert_eq!(d.destination_packets(), reduce::destination_packets(&a));
        prop_assert_eq!(d.destination_fan_in(), reduce::destination_fan_in(&a));
        prop_assert_eq!(d.n_cols() as u64, reduce::unique_destinations(&a));
    }

    /// Co-occurrence equals SpGEMM against the transpose (positional vs
    /// index-keyed rows reconciled).
    #[test]
    fn cooccurrence_matches_spgemm(t1 in arb_triples(), t2 in arb_triples()) {
        let a = ops::zero_norm(&build(&t1));
        let b = ops::zero_norm(&build(&t2));
        let via_cooc = spgemm::cooccurrence(&a, &b);
        let via_spgemm = spgemm::spgemm_pattern(&a, &b.transpose());
        for (ia, &ra) in a.row_keys().iter().enumerate() {
            for (ib, &rb) in b.row_keys().iter().enumerate() {
                prop_assert_eq!(
                    via_cooc.get(ia as Index, ib as Index),
                    via_spgemm.get(ra, rb),
                    "mismatch at ({}, {})", ra, rb
                );
            }
        }
    }

    /// Self co-occurrence has row degrees on the diagonal and is symmetric.
    #[test]
    fn self_cooccurrence_structure(t in arb_triples()) {
        let a = ops::zero_norm(&build(&t));
        let c = spgemm::cooccurrence(&a, &a);
        for i in 0..a.n_rows() {
            let (cols, _) = a.row_at(i);
            prop_assert_eq!(c.get(i as Index, i as Index), Some(cols.len() as u64));
        }
        for (i, j, v) in c.iter() {
            prop_assert_eq!(c.get(j, i), Some(v));
        }
    }

    /// Row-side quantities of the transpose equal column-side quantities of
    /// the original (fan-in/fan-out duality).
    #[test]
    fn transpose_duality(t in arb_triples()) {
        let a = build(&t);
        let tr = a.transpose();
        prop_assert_eq!(reduce::unique_sources(&tr), reduce::unique_destinations(&a));
        prop_assert_eq!(reduce::max_source_packets(&tr), reduce::max_destination_packets(&a));
        prop_assert_eq!(reduce::max_source_fan_out(&tr), reduce::max_destination_fan_in(&a));
    }

    /// Fuzz: decode over arbitrarily mutated v2 encodings is total (no
    /// panic — proptest fails the case if one escapes) and honest: an
    /// input it accepts with the v2 magic really does carry a matching
    /// CRC over the protected region.
    #[test]
    fn mutated_v2_decode_is_total_and_crc_honest(
        t in arb_triples(),
        muts in arb_mutations(),
        keep in 0usize..8192,
    ) {
        let mut bytes = serialize::encode(&build(&t));
        mutate(&mut bytes, &muts, keep);
        if serialize::decode::<u64>(&bytes).is_ok() && bytes[..8] == serialize::MAGIC_V2 {
            let payload_len =
                u64::from_le_bytes(bytes[16..24].try_into().unwrap()) as usize;
            let stored = u32::from_le_bytes(bytes[24..28].try_into().unwrap());
            let mut protected = bytes[8..24].to_vec();
            protected.extend_from_slice(&bytes[28..28 + payload_len]);
            prop_assert_eq!(
                stored,
                serialize::crc32(&protected),
                "decode accepted a v2 input whose CRC does not verify"
            );
        }
    }

    /// Fuzz: the legacy v1 decode path is equally total, and anything it
    /// accepts still satisfies every structural invariant.
    #[test]
    fn mutated_v1_decode_is_total(
        t in arb_triples(),
        muts in arb_mutations(),
        keep in 0usize..8192,
    ) {
        let mut bytes = serialize::encode_v1(&build(&t));
        mutate(&mut bytes, &muts, keep);
        if let Ok(a) = serialize::decode::<u64>(&bytes) {
            prop_assert!(a.check_invariants().is_ok());
        }
    }

    /// Any single bit flip anywhere in a v2 encoding is detected: the CRC
    /// covers the header counts and payload, a flip in the stored CRC
    /// mismatches the computed one, and a flip in the magic can reach
    /// neither valid magic (they differ in two bits).
    #[test]
    fn any_single_bit_flip_in_v2_is_detected(
        t in arb_triples(),
        pos in 0usize..8192,
        bit in 0u32..8,
    ) {
        let mut bytes = serialize::encode(&build(&t));
        let len = bytes.len();
        bytes[pos % len] ^= 1u8 << bit;
        prop_assert!(serialize::decode::<u64>(&bytes).is_err(), "flip at {}", pos % len);
    }

    /// Codec v2 round-trips exactly for every `Value` type, and the v1
    /// encoder's output stays decodable (back compatibility).
    #[test]
    fn codec_v2_round_trips_all_value_types(t in arb_triples()) {
        let a64 = build(&t);
        prop_assert_eq!(serialize::decode::<u64>(&serialize::encode(&a64)).unwrap(), a64.clone());
        prop_assert_eq!(serialize::decode::<u64>(&serialize::encode_v1(&a64)).unwrap(), a64);
        let a32: Csr<u32> = Coo::from_triples(
            t.iter().map(|&(r, c, v)| (r, c, u32::try_from(v).unwrap())),
        )
        .into_csr();
        prop_assert_eq!(serialize::decode::<u32>(&serialize::encode(&a32)).unwrap(), a32);
        let af: Csr<f64> = Coo::from_triples(t.iter().map(|&(r, c, v)| (r, c, v as f64)))
            .into_csr();
        prop_assert_eq!(serialize::decode::<f64>(&serialize::encode(&af)).unwrap(), af);
    }
}

/// Up to 8 xor-style byte corruptions at arbitrary offsets.
fn arb_mutations() -> impl Strategy<Value = Vec<(usize, u8)>> {
    prop::collection::vec((0usize..8192, any::<u8>()), 0..8)
}

/// Apply byte corruptions (offsets wrap) and truncate to at most `keep`
/// bytes — together they cover bit rot, tearing, and short reads.
fn mutate(bytes: &mut Vec<u8>, muts: &[(usize, u8)], keep: usize) {
    let len = bytes.len();
    for &(pos, m) in muts {
        if len > 0 {
            bytes[pos % len] ^= m;
        }
    }
    if keep < bytes.len() {
        bytes.truncate(keep);
    }
}
