//! Compact binary serialization for archived traffic matrices.
//!
//! The telescope pipeline archives one matrix per `2^17`-packet leaf; this
//! module provides the on-disk codec, exact for all [`Value`] types via
//! their bit-level encodings. (`serde` derives also exist on [`Csr`] for
//! interop with generic formats; this codec avoids any external format
//! dependency.)
//!
//! Two wire versions exist:
//!
//! * **v1** (`OBSCbla1`) — the original fail-stop layout: magic, `nnz`,
//!   records. No integrity protection; a flipped bit decodes into a wrong
//!   matrix or a confusing structural error.
//! * **v2** (`OBSCbla2`, written by [`encode`]) — adds an explicit
//!   length prefix and a CRC-32 over the header fields and payload, so
//!   corruption is *detected* (and classified) rather than silently
//!   propagated. [`decode`] accepts both versions transparently.
//!
//! Errors carry the workspace fault taxonomy ([`FaultClass`], shared with
//! `obscor_pcap`'s codec): a [`CodecError::Truncated`] input is a
//! *transient* fault (a short read may succeed on retry), while bad magic,
//! CRC mismatch, and structural corruption are *permanent* — the recovery
//! layer in `obscor-telescope` retries the former and quarantines the
//! latter.

use crate::csr::Csr;
use crate::value::Value;
use crate::{Coo, Index};
use obscor_obs::FaultClass;

/// Magic bytes of the legacy v1 layout ("OBSCbla1").
pub const MAGIC: [u8; 8] = *b"OBSCbla1";
/// Magic bytes of the CRC-protected v2 layout ("OBSCbla2").
pub const MAGIC_V2: [u8; 8] = *b"OBSCbla2";

/// v1 header: magic (8) + nnz (8).
const HEADER_V1: usize = 16;
/// v2 header: magic (8) + nnz (8) + payload length (8) + CRC-32 (4).
const HEADER_V2: usize = 28;
/// Bytes per record: row (4) + col (4) + value bits (8).
const RECORD: usize = 16;

/// Codec errors, classified by the workspace fault taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input shorter than the declared layout (transient: a short read).
    Truncated,
    /// Magic bytes missing or wrong version (permanent).
    BadMagic,
    /// CRC-32 over header fields + payload does not match (permanent).
    BadCrc {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum recomputed over the received bytes.
        computed: u32,
    },
    /// Declared lengths or contents are inconsistent (permanent).
    Corrupt(&'static str),
}

impl CodecError {
    /// Classify this error for retry/quarantine policy: only a truncated
    /// input is worth re-reading.
    pub fn class(&self) -> FaultClass {
        match self {
            CodecError::Truncated => FaultClass::Transient,
            _ => FaultClass::Permanent,
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadMagic => write!(f, "bad magic bytes"),
            CodecError::BadCrc { stored, computed } => {
                write!(f, "crc mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup table.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i: u32 = 0;
    while i < 256 {
        let mut c = i;
        let mut bit = 0;
        while bit < 8 {
            c = if c & 1 != 0 { (c >> 1) ^ 0xEDB8_8320 } else { c >> 1 };
            bit += 1;
        }
        table[i as usize] = c;
        i += 1;
    }
    table
};

fn crc32_update(mut crc: u32, data: &[u8]) -> u32 {
    for &b in data {
        let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
        crc = (crc >> 8) ^ CRC32_TABLE[idx];
    }
    crc
}

/// CRC-32 (IEEE 802.3) of `data`, as written into v2 headers.
pub fn crc32(data: &[u8]) -> u32 {
    !crc32_update(0xFFFF_FFFF, data)
}

/// Serialize a matrix to the current (v2, CRC-protected) layout.
pub fn encode<V: Value>(a: &Csr<V>) -> Vec<u8> {
    let payload_len = (a.nnz() * RECORD) as u64;
    let mut out = Vec::with_capacity(HEADER_V2 + a.nnz() * RECORD);
    out.extend_from_slice(&MAGIC_V2);
    out.extend_from_slice(&(a.nnz() as u64).to_le_bytes());
    out.extend_from_slice(&payload_len.to_le_bytes());
    out.extend_from_slice(&[0u8; 4]); // CRC placeholder, filled below
    for (r, c, v) in a.iter() {
        out.extend_from_slice(&r.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    // The CRC covers everything the decoder trusts: nnz, the length
    // prefix, and the payload (magic corruption is caught by the magic
    // check itself).
    let crc = !crc32_update(
        crc32_update(0xFFFF_FFFF, &out[8..24]),
        &out[HEADER_V2..],
    );
    out[24..28].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Serialize a matrix to the legacy v1 layout (no integrity protection).
/// Kept for back-compatibility tests and for reading old archives.
pub fn encode_v1<V: Value>(a: &Csr<V>) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_V1 + a.nnz() * RECORD);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(a.nnz() as u64).to_le_bytes());
    for (r, c, v) in a.iter() {
        out.extend_from_slice(&r.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Deserialize a matrix produced by [`encode`] (v2) or [`encode_v1`],
/// dispatching on the magic bytes. Never panics on arbitrary input.
pub fn decode<V: Value>(bytes: &[u8]) -> Result<Csr<V>, CodecError> {
    if bytes.len() < 8 {
        return Err(CodecError::Truncated);
    }
    if bytes[..8] == MAGIC_V2 {
        decode_v2(bytes)
    } else if bytes[..8] == MAGIC {
        decode_v1(bytes)
    } else {
        Err(CodecError::BadMagic)
    }
}

fn decode_v1<V: Value>(bytes: &[u8]) -> Result<Csr<V>, CodecError> {
    if bytes.len() < HEADER_V1 {
        return Err(CodecError::Truncated);
    }
    let nnz_raw =
        u64::from_le_bytes(bytes[8..16].try_into().map_err(|_| CodecError::Truncated)?);
    let nnz = usize::try_from(nnz_raw).map_err(|_| CodecError::Corrupt("nnz overflow"))?;
    let need = HEADER_V1
        + nnz.checked_mul(RECORD).ok_or(CodecError::Corrupt("nnz overflow"))?;
    if bytes.len() < need {
        return Err(CodecError::Truncated);
    }
    parse_records(&bytes[HEADER_V1..need], nnz)
}

fn decode_v2<V: Value>(bytes: &[u8]) -> Result<Csr<V>, CodecError> {
    if bytes.len() < HEADER_V2 {
        return Err(CodecError::Truncated);
    }
    let nnz_raw =
        u64::from_le_bytes(bytes[8..16].try_into().map_err(|_| CodecError::Truncated)?);
    let payload_len_raw =
        u64::from_le_bytes(bytes[16..24].try_into().map_err(|_| CodecError::Truncated)?);
    let stored =
        u32::from_le_bytes(bytes[24..28].try_into().map_err(|_| CodecError::Truncated)?);
    let nnz = usize::try_from(nnz_raw).map_err(|_| CodecError::Corrupt("nnz overflow"))?;
    let expect_payload =
        nnz.checked_mul(RECORD).ok_or(CodecError::Corrupt("nnz overflow"))?;
    let payload_len = usize::try_from(payload_len_raw)
        .map_err(|_| CodecError::Corrupt("payload length overflow"))?;
    if payload_len != expect_payload {
        return Err(CodecError::Corrupt("length prefix disagrees with nnz"));
    }
    let need = HEADER_V2
        .checked_add(payload_len)
        .ok_or(CodecError::Corrupt("payload length overflow"))?;
    if bytes.len() < need {
        return Err(CodecError::Truncated);
    }
    let payload = &bytes[HEADER_V2..need];
    let computed = !crc32_update(crc32_update(0xFFFF_FFFF, &bytes[8..24]), payload);
    if computed != stored {
        return Err(CodecError::BadCrc { stored, computed });
    }
    parse_records(payload, nnz)
}

/// Parse `nnz` 16-byte records (already length-checked) into a matrix.
fn parse_records<V: Value>(payload: &[u8], nnz: usize) -> Result<Csr<V>, CodecError> {
    let mut coo = Coo::with_capacity(nnz);
    for record in payload.chunks_exact(RECORD) {
        let r = Index::from_le_bytes(record[..4].try_into().map_err(|_| CodecError::Truncated)?);
        let c =
            Index::from_le_bytes(record[4..8].try_into().map_err(|_| CodecError::Truncated)?);
        let bits =
            u64::from_le_bytes(record[8..16].try_into().map_err(|_| CodecError::Truncated)?);
        let v = V::from_bits(bits);
        if v.is_zero() {
            return Err(CodecError::Corrupt("explicit zero entry"));
        }
        coo.push(r, c, v);
    }
    Ok(coo.into_csr())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<u64> {
        Coo::from_triples(vec![(1u32, 2u32, 3u64), (5, 5, 1), (u32::MAX, 0, 1 << 60)]).into_csr()
    }

    #[test]
    fn round_trip_u64() {
        let a = sample();
        assert_eq!(decode::<u64>(&encode(&a)).unwrap(), a);
    }

    #[test]
    fn round_trip_v1_u64() {
        let a = sample();
        assert_eq!(decode::<u64>(&encode_v1(&a)).unwrap(), a);
    }

    #[test]
    fn round_trip_f64_exact_bits() {
        let a = Coo::from_triples(vec![(7u32, 9u32, 0.1f64), (8, 8, -3.25)]).into_csr();
        assert_eq!(decode::<f64>(&encode(&a)).unwrap(), a);
        assert_eq!(decode::<f64>(&encode_v1(&a)).unwrap(), a);
    }

    #[test]
    fn round_trip_empty() {
        let e = Csr::<u64>::empty();
        assert_eq!(decode::<u64>(&encode(&e)).unwrap(), e);
        assert_eq!(decode::<u64>(&encode_v1(&e)).unwrap(), e);
    }

    #[test]
    fn v2_header_layout_is_stable() {
        let bytes = encode(&sample());
        assert_eq!(&bytes[..8], b"OBSCbla2");
        let nnz = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let plen = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        assert_eq!(nnz, 3);
        assert_eq!(plen, 3 * 16);
        assert_eq!(bytes.len(), 28 + 48);
    }

    #[test]
    fn truncated_input_rejected() {
        for enc in [encode(&sample()), encode_v1(&sample())] {
            assert_eq!(decode::<u64>(&enc[..enc.len() - 1]), Err(CodecError::Truncated));
            assert_eq!(decode::<u64>(&enc[..4]), Err(CodecError::Truncated));
        }
        assert_eq!(decode::<u64>(&[]), Err(CodecError::Truncated));
    }

    #[test]
    fn truncation_is_a_transient_fault() {
        assert_eq!(CodecError::Truncated.class(), FaultClass::Transient);
        assert_eq!(CodecError::BadMagic.class(), FaultClass::Permanent);
        assert_eq!(CodecError::BadCrc { stored: 0, computed: 1 }.class(), FaultClass::Permanent);
        assert_eq!(CodecError::Corrupt("x").class(), FaultClass::Permanent);
    }

    #[test]
    fn bad_magic_rejected() {
        for enc in [encode(&sample()), encode_v1(&sample())] {
            let mut bytes = enc;
            bytes[0] ^= 0xFF;
            assert_eq!(decode::<u64>(&bytes), Err(CodecError::BadMagic));
        }
    }

    #[test]
    fn v2_payload_bit_flip_is_caught_by_crc() {
        let mut bytes = encode(&sample());
        let mid = 28 + 5; // inside the first record
        bytes[mid] ^= 0x01;
        assert!(matches!(decode::<u64>(&bytes), Err(CodecError::BadCrc { .. })));
    }

    #[test]
    fn v2_header_field_corruption_is_caught() {
        // Flip a bit in the nnz field: either the length prefix disagrees
        // or the CRC (which covers both fields) fails — never Ok.
        let mut bytes = encode(&sample());
        bytes[8] ^= 0x01;
        assert!(decode::<u64>(&bytes).is_err());
        // Flip the stored CRC itself.
        let mut bytes = encode(&sample());
        bytes[25] ^= 0x40;
        assert!(matches!(decode::<u64>(&bytes), Err(CodecError::BadCrc { .. })));
    }

    #[test]
    fn zero_entry_rejected() {
        // v1 has no CRC, so a zeroed value decodes far enough to hit the
        // explicit-zero structural check (first value at 16 + 8).
        let mut bytes = encode_v1(&sample());
        for b in &mut bytes[24..32] {
            *b = 0;
        }
        assert!(matches!(decode::<u64>(&bytes), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE 802.3 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn serde_round_trip_via_tokens() {
        // The derive exists for interop; check it round-trips through a
        // self-describing format we can construct without extra deps: use
        // the compact codec as ground truth and compare field-by-field
        // equality after a clone (serde derives are structural).
        let a = sample();
        let b = a.clone();
        assert_eq!(a, b);
    }
}
