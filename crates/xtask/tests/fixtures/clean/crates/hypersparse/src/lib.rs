// Audit fixture: a type whose constructor IS covered by an invariant test
// (see ../tests/invariants.rs).

pub struct Grid {
    n: usize,
}

impl Grid {
    pub fn new(n: usize) -> Self {
        Grid { n }
    }

    pub fn check_invariants(&self) -> Result<(), String> {
        if self.n < usize::MAX {
            Ok(())
        } else {
            Err("grid too large".into())
        }
    }
}
