//! Fig 3: log2-binned source packet degree distributions for all five
//! windows with Zipf–Mandelbrot fits, printed in the paper's series
//! shape; benchmarks the binning and the grid fit separately.

use criterion::{criterion_group, criterion_main, Criterion};
use obscor_bench::{bench_nv, fixture};
use obscor_core::distribution::degree_distribution;
use obscor_core::AnalysisConfig;
use obscor_stats::binning::differential_cumulative;
use obscor_stats::zipf::fit_zipf_mandelbrot;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(bench_nv(), 42);
    let config = AnalysisConfig::default();

    eprintln!("\n=== FIG 3 (regenerated) ===");
    for wd in &f.degrees {
        let dist = degree_distribution(wd, &config);
        let fit = dist.fit.expect("windows are nonempty");
        eprintln!(
            "window {}: ZM alpha={:.2} delta={:.2} residual={:.3}; D(d_i):",
            wd.label, fit.alpha, fit.delta, fit.residual
        );
        let series: Vec<String> =
            dist.binned.iter().map(|(d, v)| format!("2^{}:{:.2e}", (d as f64).log2() as u32, v)).collect();
        eprintln!("  {}", series.join(" "));
    }

    let h = f.degrees[0].histogram();
    let binned = differential_cumulative(&h);
    let d_max = h.d_max();

    let mut g = c.benchmark_group("fig3");
    g.sample_size(20);
    g.bench_function("histogram", |b| b.iter(|| black_box(f.degrees[0].histogram())));
    g.bench_function("log2_binning", |b| {
        b.iter(|| black_box(differential_cumulative(&h)))
    });
    g.bench_function("zm_grid_fit", |b| {
        b.iter(|| {
            black_box(fit_zipf_mandelbrot(
                &binned,
                d_max,
                &config.zm_alphas,
                &config.zm_deltas,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
