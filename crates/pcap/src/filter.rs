//! Composable packet validity filters.
//!
//! "It is common to filter the packets down to a valid set for any
//! particular analysis. Such filters may limit particular sources,
//! destinations, protocols, and time windows." The telescope uses a
//! destination-prefix filter (darkspace membership) composed with a
//! legitimate-traffic exclusion.

use crate::packet::{Ip4, Packet, Protocol};

/// A predicate over packets. Implemented by all filter combinators and by
/// plain closures.
pub trait PacketFilter {
    /// Whether the packet belongs to the valid set.
    fn accept(&self, p: &Packet) -> bool;
}

impl<F: Fn(&Packet) -> bool> PacketFilter for F {
    fn accept(&self, p: &Packet) -> bool {
        self(p)
    }
}

/// Accepts everything.
#[derive(Clone, Copy, Debug, Default)]
pub struct AcceptAll;

impl PacketFilter for AcceptAll {
    fn accept(&self, _p: &Packet) -> bool {
        true
    }
}

/// Accepts packets whose destination lies in a CIDR prefix — the darkspace
/// membership test.
#[derive(Clone, Copy, Debug)]
pub struct PrefixFilter {
    /// Prefix network address.
    pub prefix: Ip4,
    /// Prefix length in bits.
    pub len: u8,
}

impl PrefixFilter {
    /// A `/8` darkspace rooted at `first_octet.0.0.0` (the telescope
    /// monitors a globally routed /8).
    pub fn slash8(first_octet: u8) -> Self {
        Self { prefix: Ip4::from_octets(first_octet, 0, 0, 0), len: 8 }
    }
}

impl PacketFilter for PrefixFilter {
    fn accept(&self, p: &Packet) -> bool {
        p.dst.in_prefix(self.prefix, self.len)
    }
}

/// Accepts one transport protocol.
#[derive(Clone, Copy, Debug)]
pub struct ProtocolFilter(pub Protocol);

impl PacketFilter for ProtocolFilter {
    fn accept(&self, p: &Packet) -> bool {
        p.proto == self.0
    }
}

/// Conjunction of two filters.
#[derive(Clone, Copy, Debug)]
pub struct AndFilter<A, B>(pub A, pub B);

impl<A: PacketFilter, B: PacketFilter> PacketFilter for AndFilter<A, B> {
    fn accept(&self, p: &Packet) -> bool {
        self.0.accept(p) && self.1.accept(p)
    }
}

/// Negation of a filter.
#[derive(Clone, Copy, Debug)]
pub struct NotFilter<A>(pub A);

impl<A: PacketFilter> PacketFilter for NotFilter<A> {
    fn accept(&self, p: &Packet) -> bool {
        !self.0.accept(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(dst: Ip4, proto: Protocol) -> Packet {
        Packet { dst, proto, ..Packet::default() }
    }

    #[test]
    fn prefix_filter_slash8() {
        let f = PrefixFilter::slash8(44);
        assert!(f.accept(&pkt(Ip4::from_octets(44, 9, 9, 9), Protocol::Tcp)));
        assert!(!f.accept(&pkt(Ip4::from_octets(45, 9, 9, 9), Protocol::Tcp)));
    }

    #[test]
    fn protocol_filter() {
        let f = ProtocolFilter(Protocol::Udp);
        assert!(f.accept(&pkt(Ip4(0), Protocol::Udp)));
        assert!(!f.accept(&pkt(Ip4(0), Protocol::Tcp)));
    }

    #[test]
    fn combinators_compose() {
        let f = AndFilter(PrefixFilter::slash8(44), NotFilter(ProtocolFilter(Protocol::Icmp)));
        assert!(f.accept(&pkt(Ip4::from_octets(44, 0, 0, 1), Protocol::Tcp)));
        assert!(!f.accept(&pkt(Ip4::from_octets(44, 0, 0, 1), Protocol::Icmp)));
        assert!(!f.accept(&pkt(Ip4::from_octets(45, 0, 0, 1), Protocol::Tcp)));
    }

    #[test]
    fn closures_are_filters() {
        let f = |p: &Packet| p.dst_port == 443;
        let mut p = pkt(Ip4(1), Protocol::Tcp);
        p.dst_port = 443;
        assert!(f.accept(&p));
        p.dst_port = 80;
        assert!(!f.accept(&p));
    }

    #[test]
    fn accept_all_accepts() {
        assert!(AcceptAll.accept(&Packet::default()));
    }
}
