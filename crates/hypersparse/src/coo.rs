//! Coordinate-format (COO) triple buffer.
//!
//! Packets append `(source, destination, count)` triples in arrival order;
//! compaction sorts by `(row, col)` and sums duplicates, producing the
//! immutable [`Csr`] used by all analytics. Compaction is where all the time
//! goes when building traffic matrices, so both a serial and a rayon-parallel
//! path are provided (the parallel path is the default above a size
//! threshold; the bench crate ablates the two).

use crate::csr::Csr;
use crate::value::Value;
use crate::Index;
use rayon::prelude::*;

/// Minimum number of triples before compaction switches to parallel sorting.
const PAR_SORT_THRESHOLD: usize = 1 << 15;

/// An append-only buffer of `(row, col, value)` triples.
///
/// Duplicate coordinates are allowed and are summed during [`Coo::into_csr`].
/// Explicit zeros are dropped during compaction, matching GraphBLAS
/// semantics.
#[derive(Clone, Debug, Default)]
pub struct Coo<V: Value> {
    rows: Vec<Index>,
    cols: Vec<Index>,
    vals: Vec<V>,
}

impl<V: Value> Coo<V> {
    /// Create an empty buffer.
    pub fn new() -> Self {
        Self { rows: Vec::new(), cols: Vec::new(), vals: Vec::new() }
    }

    /// Create an empty buffer with room for `cap` triples.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Internal consistency check: the three coordinate/value columns must
    /// stay in lockstep. (Duplicates and explicit zeros are legal in the
    /// pre-compaction buffer; [`Coo::into_csr`] removes both.) Used by
    /// tests and the pipeline's `strict-invariants` stage checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.rows.len() != self.cols.len() || self.rows.len() != self.vals.len() {
            return Err(format!(
                "column lengths diverge: rows={} cols={} vals={}",
                self.rows.len(),
                self.cols.len(),
                self.vals.len()
            ));
        }
        Ok(())
    }

    /// Append one triple.
    #[inline]
    pub fn push(&mut self, row: Index, col: Index, val: V) {
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Append a unit-valued triple (one packet from `row` to `col`).
    #[inline]
    pub fn push_edge(&mut self, row: Index, col: Index) {
        self.push(row, col, V::one());
    }

    /// Number of buffered (pre-compaction, possibly duplicated) triples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the buffer holds no triples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Build from an iterator of triples.
    pub fn from_triples<I: IntoIterator<Item = (Index, Index, V)>>(iter: I) -> Self {
        let mut coo = Self::new();
        for (r, c, v) in iter {
            coo.push(r, c, v);
        }
        coo
    }

    /// Iterate over the raw (uncompacted) triples.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, V)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.vals.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Compact into an immutable hypersparse CSR matrix, choosing the
    /// parallel path automatically for large buffers.
    pub fn into_csr(self) -> Csr<V> {
        let csr = if self.len() >= PAR_SORT_THRESHOLD {
            self.into_csr_parallel()
        } else {
            self.into_csr_serial()
        };
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(msg) = csr.check_invariants() {
                // audit:allow(panic-path) — strict-invariants mode aborts on broken invariants by contract
                panic!("compaction produced an invalid CSR: {msg}");
            }
        }
        csr
    }

    /// Serial compaction: sort triples by `(row, col)`, then sum runs.
    pub fn into_csr_serial(self) -> Csr<V> {
        let mut triples = self.into_sorted_triples(false);
        dedup_sorted(&mut triples);
        Csr::from_sorted_dedup_triples(triples)
    }

    /// Parallel compaction using rayon's parallel unstable sort.
    pub fn into_csr_parallel(self) -> Csr<V> {
        let mut triples = self.into_sorted_triples(true);
        dedup_sorted(&mut triples);
        Csr::from_sorted_dedup_triples(triples)
    }

    fn into_sorted_triples(self, parallel: bool) -> Vec<(Index, Index, V)> {
        let mut triples: Vec<(Index, Index, V)> = self
            .rows
            .into_iter()
            .zip(self.cols)
            .zip(self.vals)
            .map(|((r, c), v)| (r, c, v))
            .collect();
        if parallel {
            triples.par_sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        } else {
            triples.sort_unstable_by_key(|&(r, c, _)| ((r as u64) << 32) | c as u64);
        }
        triples
    }
}

impl<V: Value> Extend<(Index, Index, V)> for Coo<V> {
    fn extend<I: IntoIterator<Item = (Index, Index, V)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

/// Sum runs of identical `(row, col)` coordinates in place, dropping
/// resulting zeros. Input must be sorted by `(row, col)`.
fn dedup_sorted<V: Value>(triples: &mut Vec<(Index, Index, V)>) {
    let mut write = 0usize;
    let mut read = 0usize;
    let n = triples.len();
    while read < n {
        let (r, c, mut acc) = triples[read];
        read += 1;
        while read < n && triples[read].0 == r && triples[read].1 == c {
            acc += triples[read].2;
            read += 1;
        }
        if !acc.is_zero() {
            triples[write] = (r, c, acc);
            write += 1;
        }
    }
    triples.truncate(write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_coo_gives_empty_csr() {
        let coo = Coo::<u64>::new();
        let csr = coo.into_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.n_rows(), 0);
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = Coo::<u64>::new();
        coo.push(5, 7, 2);
        coo.push(5, 7, 3);
        coo.push(5, 8, 1);
        let csr = coo.into_csr();
        assert_eq!(csr.get(5, 7), Some(5));
        assert_eq!(csr.get(5, 8), Some(1));
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn explicit_zeros_are_dropped() {
        let mut coo = Coo::<f64>::new();
        coo.push(1, 1, 0.0);
        coo.push(2, 2, 1.5);
        coo.push(2, 2, -1.5); // cancels to zero
        let csr = coo.into_csr();
        assert_eq!(csr.nnz(), 0);
    }

    #[test]
    fn serial_and_parallel_paths_agree() {
        let mut a = Coo::<u64>::new();
        let mut b = Coo::<u64>::new();
        // Deterministic pseudo-random triples with plenty of duplicates.
        let mut state = 0x2545F4914F6CDD1Du64;
        for _ in 0..100_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let r = (state >> 40) as Index % 997;
            let c = (state >> 20) as Index % 991;
            a.push(r, c, 1);
            b.push(r, c, 1);
        }
        let ca = a.into_csr_serial();
        let cb = b.into_csr_parallel();
        assert_eq!(ca, cb);
    }

    #[test]
    fn push_edge_is_unit_valued() {
        let mut coo = Coo::<u32>::new();
        coo.push_edge(9, 9);
        coo.push_edge(9, 9);
        assert_eq!(coo.into_csr().get(9, 9), Some(2));
    }

    #[test]
    fn from_triples_round_trips() {
        let t = vec![(1u32, 2u32, 10u64), (0, 0, 1)];
        let coo = Coo::from_triples(t.clone());
        assert_eq!(coo.len(), 2);
        let collected: Vec<_> = coo.iter().collect();
        assert_eq!(collected, t);
    }

    #[test]
    fn extend_appends() {
        let mut coo = Coo::<u64>::new();
        coo.extend(vec![(1, 1, 1), (2, 2, 2)]);
        assert_eq!(coo.len(), 2);
    }

    #[test]
    fn sort_key_orders_row_major() {
        // Rows must dominate the ordering even when cols are large.
        let mut coo = Coo::<u64>::new();
        coo.push(1, u32::MAX, 1);
        coo.push(2, 0, 1);
        let csr = coo.into_csr_serial();
        let rows: Vec<_> = csr.row_keys().to_vec();
        assert_eq!(rows, vec![1, 2]);
    }
}
