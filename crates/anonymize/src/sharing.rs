//! Trusted-sharing correlation workflows for anonymized data.
//!
//! The paper (§I) lists three ways subsets of anonymized data from
//! multiple sources can be correlated within a trusted-sharing framework:
//!
//! 1. **Send-back deanonymization** — for small, low-risk subsets the data
//!    holder deanonymizes the subset on request (the approach this paper's
//!    study used),
//! 2. **Common scheme** — each holder deanonymizes its subset and
//!    re-anonymizes under a third, shared scheme,
//! 3. **Transformation table** — for larger sets, a holder publishes a
//!    mapping from its anonymized identifiers directly to the common
//!    scheme, so recipients never see raw addresses.
//!
//! All three are modeled here around [`CryptoPan`] so that integration
//! tests can verify the central soundness property: *correlating two data
//! sets through any workflow yields exactly the correlations of the raw
//! data*.

use crate::cryptopan::CryptoPan;
use crate::memo::MemoCryptoPan;
use std::collections::HashMap;

/// A data holder: owns a CryptoPAN key and publishes data anonymized
/// under it.
///
/// Holders anonymize every address they ever publish, so the key is held
/// as a [`MemoCryptoPan`]: one prefix-table build at construction, then
/// half the AES work per address — with output bit-identical to the
/// uncached scheme, so every sharing workflow is unaffected.
pub struct Holder {
    cp: MemoCryptoPan,
    /// Human-readable name used in audit records.
    pub name: String,
}

impl Holder {
    /// Create a holder with its private 32-byte key.
    pub fn new(name: impl Into<String>, key: &[u8; 32]) -> Self {
        Self { cp: MemoCryptoPan::new(key), name: name.into() }
    }

    /// Anonymize raw addresses for publication (batched: duplicates are
    /// anonymized once).
    pub fn publish(&self, raw: &[u32]) -> Vec<u32> {
        let mut out = raw.to_vec();
        self.cp.anonymize_slice(&mut out);
        out
    }

    /// Workflow 1: deanonymize a small subset sent back by a researcher.
    /// Enforces the "small and low-risk" condition with an explicit cap.
    pub fn deanonymize_subset(
        &self,
        subset: &[u32],
        max_subset: usize,
    ) -> Result<Vec<u32>, SharingError> {
        if subset.len() > max_subset {
            return Err(SharingError::SubsetTooLarge { requested: subset.len(), max: max_subset });
        }
        Ok(subset.iter().map(|&a| self.cp.deanonymize(a)).collect())
    }

    /// Workflow 2: re-anonymize a subset of *this holder's* anonymized
    /// addresses under a common third scheme, without revealing raw
    /// addresses to the caller.
    pub fn reanonymize_subset(
        &self,
        subset: &[u32],
        common: &CryptoPan,
        max_subset: usize,
    ) -> Result<Vec<u32>, SharingError> {
        if subset.len() > max_subset {
            return Err(SharingError::SubsetTooLarge { requested: subset.len(), max: max_subset });
        }
        Ok(subset.iter().map(|&a| common.anonymize(self.cp.deanonymize(a))).collect())
    }

    /// Workflow 3: produce a transformation table mapping this holder's
    /// anonymized identifiers to the common scheme for a (possibly large)
    /// address universe.
    pub fn transformation_table(&self, own_anon: &[u32], common: &CryptoPan) -> TransformTable {
        let map = own_anon
            .iter()
            .map(|&a| (a, common.anonymize(self.cp.deanonymize(a))))
            .collect();
        TransformTable { map }
    }
}

/// A published mapping from one anonymization scheme to a common one.
#[derive(Debug, Clone, Default)]
pub struct TransformTable {
    map: HashMap<u32, u32>,
}

impl TransformTable {
    /// Translate one identifier; `None` if it was not in the published set.
    pub fn translate(&self, anon: u32) -> Option<u32> {
        self.map.get(&anon).copied()
    }

    /// Translate a data set, dropping identifiers outside the table.
    pub fn translate_all(&self, anon: &[u32]) -> Vec<u32> {
        anon.iter().filter_map(|&a| self.translate(a)).collect()
    }

    /// Number of published mappings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Errors from the sharing workflows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SharingError {
    /// A send-back request exceeded the agreed subset cap.
    SubsetTooLarge {
        /// Size of the rejected request.
        requested: usize,
        /// The agreed maximum.
        max: usize,
    },
}

impl std::fmt::Display for SharingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SharingError::SubsetTooLarge { requested, max } => {
                write!(f, "subset of {requested} exceeds trusted-sharing cap of {max}")
            }
        }
    }
}

impl std::error::Error for SharingError {}

/// Count the overlap of two *raw* address sets — the ground truth every
/// workflow must reproduce.
pub fn raw_overlap(a: &[u32], b: &[u32]) -> usize {
    let set: std::collections::HashSet<u32> = a.iter().copied().collect();
    b.iter().filter(|x| set.contains(x)).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(seed: u8) -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = seed.wrapping_add(i as u8).wrapping_mul(13);
        }
        k
    }

    fn raw_sets() -> (Vec<u32>, Vec<u32>) {
        // Two observatories with a 3-address overlap.
        let a = vec![0x0A000001, 0x0A000002, 0x0A000003, 0xC0A80001, 0x08080808];
        let b = vec![0x0A000002, 0x0A000003, 0x08080808, 0x01010101];
        (a, b)
    }

    #[test]
    fn workflow1_send_back() {
        let (raw_a, raw_b) = raw_sets();
        let holder_a = Holder::new("caida", &key(1));
        let pub_a = holder_a.publish(&raw_a);
        // Researcher sends the anonymized subset back for deanonymization.
        let returned = holder_a.deanonymize_subset(&pub_a, 10).unwrap();
        assert_eq!(returned, raw_a);
        assert_eq!(raw_overlap(&returned, &raw_b), 3);
    }

    #[test]
    fn workflow1_enforces_cap() {
        let holder = Holder::new("caida", &key(1));
        let err = holder.deanonymize_subset(&[1, 2, 3], 2).unwrap_err();
        assert_eq!(err, SharingError::SubsetTooLarge { requested: 3, max: 2 });
    }

    #[test]
    fn workflow2_common_scheme_preserves_overlap() {
        let (raw_a, raw_b) = raw_sets();
        let holder_a = Holder::new("caida", &key(1));
        let holder_b = Holder::new("greynoise", &key(2));
        let common = CryptoPan::new(&key(3));
        let pub_a = holder_a.publish(&raw_a);
        let pub_b = holder_b.publish(&raw_b);
        let common_a = holder_a.reanonymize_subset(&pub_a, &common, 100).unwrap();
        let common_b = holder_b.reanonymize_subset(&pub_b, &common, 100).unwrap();
        assert_eq!(raw_overlap(&common_a, &common_b), raw_overlap(&raw_a, &raw_b));
        // But the common identifiers never equal raw addresses en masse.
        assert_ne!(common_a, raw_a);
    }

    #[test]
    fn workflow3_transformation_table_preserves_overlap() {
        let (raw_a, raw_b) = raw_sets();
        let holder_a = Holder::new("caida", &key(1));
        let holder_b = Holder::new("greynoise", &key(2));
        let common = CryptoPan::new(&key(3));
        let pub_a = holder_a.publish(&raw_a);
        let pub_b = holder_b.publish(&raw_b);
        let table_a = holder_a.transformation_table(&pub_a, &common);
        let table_b = holder_b.transformation_table(&pub_b, &common);
        let common_a = table_a.translate_all(&pub_a);
        let common_b = table_b.translate_all(&pub_b);
        assert_eq!(table_a.len(), raw_a.len());
        assert_eq!(raw_overlap(&common_a, &common_b), raw_overlap(&raw_a, &raw_b));
    }

    #[test]
    fn table_misses_return_none() {
        let holder = Holder::new("x", &key(9));
        let table = holder.transformation_table(&[], &CryptoPan::new(&key(4)));
        assert!(table.is_empty());
        assert_eq!(table.translate(42), None);
        assert_eq!(table.translate_all(&[1, 2, 3]), Vec::<u32>::new());
    }

    #[test]
    fn different_holders_disagree_pre_translation() {
        let (raw_a, _) = raw_sets();
        let a = Holder::new("a", &key(1)).publish(&raw_a);
        let b = Holder::new("b", &key(2)).publish(&raw_a);
        // Identical raw data appears disjoint across schemes — why naive
        // cross-observatory correlation fails without these workflows.
        assert_eq!(raw_overlap(&a, &b), 0);
    }
}
