// Seeds `nondet-reach` violations only the transitive closure can see.
//
// `digest` → `relay` (this file) → `emit_row` (crates/emit/src/lib.rs) →
// `escape` (crates/obs/src/json.rs) is a three-hop cross-file chain to
// the JSON codec: the one-hop symbol index marks only `escape` and its
// direct callers json-reaching, so `map-iter-order` must stay silent in
// this file. `pack` reaches the hypersparse archive codec via `seal`.

use std::collections::{BTreeMap, HashMap};

pub fn relay(k: u32) -> String {
    emit_row(k)
}

pub fn digest(m: &HashMap<u32, u64>) {
    for k in m.keys() {
        relay(*k);
    }
}

pub fn digest_sorted(m: &BTreeMap<u32, u64>) {
    for k in m.keys() {
        relay(*k);
    }
}

pub fn digest_allowed(m: &HashMap<u32, u64>) {
    // audit:allow(nondet-reach) — fixture: the marker must silence this site
    for k in m.keys() {
        relay(*k);
    }
}

pub fn seal(buf: &[u8]) -> Vec<u8> {
    obscor_hypersparse::serialize::encode(buf)
}

pub fn pack(m: &HashMap<u32, u64>) {
    for k in m.keys() {
        seal(&k.to_ne_bytes());
    }
}

#[cfg(test)]
mod tests {
    pub fn digest_in_test(m: &std::collections::HashMap<u32, u64>) {
        for k in m.keys() {
            super::relay(*k);
        }
    }
}
