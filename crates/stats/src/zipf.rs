//! The Zipf–Mandelbrot distribution `p(d) ∝ 1/(d + δ)^α`.
//!
//! The paper reports that CAIDA source packet counts are well approximated
//! by this two-parameter power law (Fig 3). This module provides the exact
//! pmf on a finite support `1..=d_max`, inverse-CDF sampling, log2-binned
//! model curves, and the paper's grid fit: bin the model identically to the
//! data, normalize both, and minimize the `| |^{1/2}` norm.

use crate::binning::{log2_bin, Log2Binned};
use crate::norms::residual_pnorm;
use rand::{Rng, RngExt};
use rayon::prelude::*;

/// A Zipf–Mandelbrot distribution on `1..=d_max`.
#[derive(Clone, Debug)]
pub struct ZipfMandelbrot {
    /// Tail exponent `α_zm > 0`.
    pub alpha: f64,
    /// Flattening offset `δ_zm ≥ 0`.
    pub delta: f64,
    /// Largest degree in the support.
    pub d_max: u64,
    /// Cumulative distribution table, `cdf[i] = P(d ≤ i+1)`.
    cdf: Vec<f64>,
}

impl ZipfMandelbrot {
    /// Construct and normalize on `1..=d_max`.
    ///
    /// # Panics
    /// Panics unless `alpha > 0`, `delta ≥ 0`, `1 ≤ d_max ≤ 2^26` (the
    /// table-based sampler bound).
    pub fn new(alpha: f64, delta: f64, d_max: u64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive");
        assert!(delta >= 0.0, "delta must be non-negative");
        assert!((1..=1u64 << 26).contains(&d_max), "d_max out of sampler range");
        let mut cdf = Vec::with_capacity(d_max as usize);
        let mut acc = 0.0f64;
        for d in 1..=d_max {
            acc += (d as f64 + delta).powf(-alpha);
            cdf.push(acc);
        }
        let norm = acc;
        for c in &mut cdf {
            *c /= norm;
        }
        Self { alpha, delta, d_max, cdf }
    }

    /// The probability mass at `d` (0 outside the support).
    pub fn pmf(&self, d: u64) -> f64 {
        if d == 0 || d > self.d_max {
            return 0.0;
        }
        let i = (d - 1) as usize;
        let lo = match i.checked_sub(1) {
            Some(prev) => self.cdf[prev],
            None => 0.0,
        };
        self.cdf[i] - lo
    }

    /// The cumulative probability `P(D ≤ d)`.
    pub fn cdf(&self, d: u64) -> f64 {
        if d == 0 {
            return 0.0;
        }
        let i = (d.min(self.d_max) - 1) as usize;
        self.cdf[i]
    }

    /// Draw one degree by inverse-CDF binary search.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.random();
        let i = self.cdf.partition_point(|&c| c < u);
        (i as u64 + 1).min(self.d_max)
    }

    /// Draw `n` degrees.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The model pooled into the paper's log2 bins (normalized pmf mass per
    /// bin) — the curve drawn through the data in Fig 3.
    pub fn binned(&self) -> Log2Binned {
        let n_bins = log2_bin(self.d_max) as usize + 1;
        let mut values = vec![0.0; n_bins];
        for d in 1..=self.d_max {
            values[log2_bin(d) as usize] += self.pmf(d);
        }
        Log2Binned { values }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        (1..=self.d_max).map(|d| d as f64 * self.pmf(d)).sum()
    }
}

/// Result of a Zipf–Mandelbrot grid fit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ZmFit {
    /// Best-fit exponent.
    pub alpha: f64,
    /// Best-fit offset.
    pub delta: f64,
    /// `| |^{1/2}`-norm residual at the optimum.
    pub residual: f64,
}

/// Fit a Zipf–Mandelbrot model to a log2-binned empirical distribution by
/// scanning an `(α, δ)` grid (the paper's procedure, with the same
/// fractional-norm objective). Bins beyond the data's support are ignored;
/// both curves are normalized before comparison.
///
/// Returns `None` if the data is empty or a grid is empty.
pub fn fit_zipf_mandelbrot(
    data: &Log2Binned,
    d_max: u64,
    alphas: &[f64],
    deltas: &[f64],
) -> Option<ZmFit> {
    if data.is_empty() || alphas.is_empty() || deltas.is_empty() {
        return None;
    }
    let target = data.normalized();
    let grid: Vec<(f64, f64)> = alphas
        .iter()
        .flat_map(|&a| deltas.iter().map(move |&d| (a, d)))
        .collect();
    grid.par_iter()
        .map(|&(alpha, delta)| {
            let model = ZipfMandelbrot::new(alpha, delta, d_max).binned();
            // Compare over the data's bins only.
            let mut m: Vec<f64> = model.values;
            m.resize(target.len(), 0.0);
            m.truncate(target.len());
            let total: f64 = m.iter().sum();
            if total > 0.0 {
                for v in &mut m {
                    *v /= total;
                }
            }
            let residual = residual_pnorm(&m, &target.values, 0.5);
            ZmFit { alpha, delta, residual }
        })
        .min_by(|a, b| a.residual.total_cmp(&b.residual))
}

/// A sensible default α grid for source-packet fits.
pub fn default_alpha_grid() -> Vec<f64> {
    (4..=40).map(|i| i as f64 * 0.1).collect() // 0.4 .. 4.0
}

/// A sensible default δ grid.
pub fn default_delta_grid() -> Vec<f64> {
    vec![0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pmf_normalizes() {
        let zm = ZipfMandelbrot::new(1.8, 2.0, 4096);
        let total: f64 = (1..=4096).map(|d| zm.pmf(d)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_decreasing() {
        let zm = ZipfMandelbrot::new(2.0, 1.0, 1000);
        for d in 1..999 {
            assert!(zm.pmf(d) >= zm.pmf(d + 1));
        }
    }

    #[test]
    fn pmf_outside_support_is_zero() {
        let zm = ZipfMandelbrot::new(1.5, 0.0, 100);
        assert_eq!(zm.pmf(0), 0.0);
        assert_eq!(zm.pmf(101), 0.0);
    }

    #[test]
    fn cdf_endpoints() {
        let zm = ZipfMandelbrot::new(1.5, 0.5, 256);
        assert_eq!(zm.cdf(0), 0.0);
        assert!((zm.cdf(256) - 1.0).abs() < 1e-12);
        assert!((zm.cdf(10_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_matches_pmf() {
        let zm = ZipfMandelbrot::new(1.6, 1.0, 1024);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000usize;
        let mut count1 = 0usize;
        for _ in 0..n {
            if zm.sample(&mut rng) == 1 {
                count1 += 1;
            }
        }
        let expect = zm.pmf(1);
        let got = count1 as f64 / n as f64;
        assert!(
            (got - expect).abs() < 0.01,
            "P(d=1): sampled {got:.4}, pmf {expect:.4}"
        );
    }

    #[test]
    fn binned_mass_is_conserved() {
        let zm = ZipfMandelbrot::new(1.9, 3.0, 2048);
        assert!((zm.binned().total() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_planted_parameters() {
        let truth = ZipfMandelbrot::new(1.8, 1.0, 4096);
        let data = truth.binned();
        let fit = fit_zipf_mandelbrot(
            &data,
            4096,
            &[1.2, 1.5, 1.8, 2.1, 2.4],
            &[0.0, 0.5, 1.0, 2.0],
        )
        .unwrap();
        assert_eq!(fit.alpha, 1.8);
        assert_eq!(fit.delta, 1.0);
        assert!(fit.residual < 1e-9);
    }

    #[test]
    fn fit_recovers_from_sampled_data() {
        let truth = ZipfMandelbrot::new(2.0, 0.0, 4096);
        let mut rng = StdRng::seed_from_u64(11);
        let degrees = truth.sample_n(&mut rng, 100_000);
        let h = crate::histogram::DegreeHistogram::from_degrees(degrees);
        let data = crate::binning::differential_cumulative(&h);
        let fit = fit_zipf_mandelbrot(
            &data,
            4096,
            &crate::zipf::default_alpha_grid(),
            &[0.0, 0.5, 1.0],
        )
        .unwrap();
        assert!(
            (fit.alpha - 2.0).abs() <= 0.2,
            "recovered alpha {} from planted 2.0",
            fit.alpha
        );
    }

    #[test]
    fn fit_empty_inputs_give_none() {
        assert!(fit_zipf_mandelbrot(&Log2Binned::default(), 100, &[1.0], &[0.0]).is_none());
        let d = Log2Binned { values: vec![1.0] };
        assert!(fit_zipf_mandelbrot(&d, 100, &[], &[0.0]).is_none());
    }

    #[test]
    fn delta_flattens_the_head() {
        // Larger delta reduces the head-to-tail ratio.
        let steep = ZipfMandelbrot::new(2.0, 0.0, 1000);
        let flat = ZipfMandelbrot::new(2.0, 20.0, 1000);
        let ratio_steep = steep.pmf(1) / steep.pmf(10);
        let ratio_flat = flat.pmf(1) / flat.pmf(10);
        assert!(ratio_steep > ratio_flat);
    }

    #[test]
    fn mean_is_finite_and_positive() {
        let zm = ZipfMandelbrot::new(2.5, 1.0, 10_000);
        let m = zm.mean();
        assert!(m > 1.0 && m < 100.0);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = ZipfMandelbrot::new(0.0, 1.0, 10);
    }
}
