//! Sorted string key sets with set algebra, plus a numeric fast path.
//!
//! Row/column axes of an associative array, and the carrier of the paper's
//! correlation primitive: the intersection of a telescope window's source
//! set with a honeyfarm month's source set. [`KeySet`] is the general
//! D4M-style string-keyed form; [`NumKeySet`] interns IP-keyed sets into
//! their `u32` domain so the 15-month × per-bin correlation grid computes
//! overlaps without allocating (or comparing) a single `String`.

use serde::{Deserialize, Serialize};

/// A sorted, deduplicated set of string keys supporting binary-search
/// lookup and linear-merge set algebra.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeySet {
    keys: Vec<String>,
}

impl KeySet {
    /// The empty key set.
    pub fn new() -> Self {
        Self { keys: Vec::new() }
    }

    /// Build from any iterator of keys; sorts and deduplicates.
    ///
    /// Also reachable through the `FromIterator` impls below; the inherent
    /// name stays because it reads better at call sites that build sets
    /// explicitly.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut keys: Vec<String> = iter.into_iter().collect();
        keys.sort_unstable();
        keys.dedup();
        Self { keys }
    }

    /// Build from keys known to be sorted and unique (checked in debug).
    pub fn from_sorted_unique(keys: Vec<String>) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted unique");
        Self { keys }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sorted keys as a slice.
    pub fn as_slice(&self) -> &[String] {
        &self.keys
    }

    /// Positional index of `key`, if present.
    pub fn index_of(&self, key: &str) -> Option<usize> {
        self.keys.binary_search_by(|k| k.as_str().cmp(key)).ok()
    }

    /// Membership test.
    pub fn contains(&self, key: &str) -> bool {
        self.index_of(key).is_some()
    }

    /// Key at position `i`.
    pub fn key(&self, i: usize) -> &str {
        &self.keys[i]
    }

    /// Iterate over keys in order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        self.keys.iter().map(|s| s.as_str())
    }

    /// Set intersection by linear merge: `O(|a| + |b|)`.
    pub fn intersect(&self, other: &KeySet) -> KeySet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.keys[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        KeySet { keys: out }
    }

    /// Set union by linear merge.
    pub fn union(&self, other: &KeySet) -> KeySet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        loop {
            match (self.keys.get(i), other.keys.get(j)) {
                (Some(a), Some(b)) => match a.cmp(b) {
                    std::cmp::Ordering::Less => {
                        out.push(a.clone());
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        out.push(b.clone());
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        out.push(a.clone());
                        i += 1;
                        j += 1;
                    }
                },
                (Some(a), None) => {
                    out.push(a.clone());
                    i += 1;
                }
                (None, Some(b)) => {
                    out.push(b.clone());
                    j += 1;
                }
                // Both sides exhausted: the merge is complete.
                (None, None) => break,
            }
        }
        KeySet { keys: out }
    }

    /// Set difference `self \ other` by linear merge.
    pub fn minus(&self, other: &KeySet) -> KeySet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() {
            if j >= other.keys.len() {
                out.extend(self.keys[i..].iter().cloned());
                break;
            }
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.keys[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        KeySet { keys: out }
    }

    /// The fraction of `self`'s keys also present in `other` — the paper's
    /// correlation measure. Returns `None` for an empty `self`.
    pub fn overlap_fraction(&self, other: &KeySet) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        Some(self.intersect(other).len() as f64 / self.len() as f64)
    }

    /// Internal consistency check: keys must be strictly increasing (sorted
    /// and unique). Used by tests and the pipeline's `strict-invariants`
    /// stage checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.keys.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("keys not strictly increasing at `{}` >= `{}`", w[0], w[1]));
            }
        }
        Ok(())
    }

    /// Keys with the given prefix (contiguous range via binary search).
    pub fn with_prefix(&self, prefix: &str) -> KeySet {
        let start = self.keys.partition_point(|k| k.as_str() < prefix);
        let mut end = start;
        while end < self.keys.len() && self.keys[end].starts_with(prefix) {
            end += 1;
        }
        KeySet { keys: self.keys[start..end].to_vec() }
    }
}

/// A sorted, deduplicated set of `u32` keys — the numeric fast path for
/// IP-keyed [`KeySet`]s.
///
/// [`crate::convert::ip_key`] renders addresses as *zero-padded* dotted
/// quads, so lexicographic order on those strings equals numeric order on
/// the addresses; a `NumKeySet` is therefore order-isomorphic to its
/// string form, and [`NumKeySet::overlap_fraction`] is bit-identical to
/// [`KeySet::overlap_fraction`] (both divide the same two integer counts).
/// The win: merges compare machine words instead of strings, and
/// [`NumKeySet::overlap_count`] allocates nothing at all.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NumKeySet {
    keys: Vec<u32>,
}

/// Size ratio above which [`NumKeySet::overlap_count`] gallops (binary
/// searches the larger set) instead of merging linearly.
const GALLOP_RATIO: usize = 16;

impl NumKeySet {
    /// The empty key set.
    pub fn new() -> Self {
        Self { keys: Vec::new() }
    }

    /// Build from any iterator of keys; sorts and deduplicates.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut keys: Vec<u32> = iter.into_iter().collect();
        keys.sort_unstable();
        keys.dedup();
        Self { keys }
    }

    /// Build from keys known to be sorted and unique (checked in debug).
    pub fn from_sorted_unique(keys: Vec<u32>) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted unique");
        Self { keys }
    }

    /// Intern a string key set whose keys are all dotted-quad IPs;
    /// `None` if any key fails to parse as an IPv4 address.
    pub fn from_key_set(ks: &KeySet) -> Option<Self> {
        let parsed: Option<Vec<u32>> =
            ks.iter().map(crate::convert::parse_ip_key).collect();
        // Zero-padded keys arrive already in numeric order, but non-padded
        // spellings parse fine while breaking it — normalize.
        Some(Self::from_iter(parsed?))
    }

    /// Render back to the string key domain (zero-padded dotted quads, so
    /// the output is already sorted).
    pub fn to_key_set(&self) -> KeySet {
        KeySet::from_sorted_unique(self.keys.iter().map(|&k| crate::convert::ip_key(k)).collect())
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sorted keys as a slice.
    pub fn as_slice(&self) -> &[u32] {
        &self.keys
    }

    /// Membership test.
    pub fn contains(&self, key: u32) -> bool {
        self.keys.binary_search(&key).is_ok()
    }

    /// Iterate over keys in order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.keys.iter().copied()
    }

    /// Set intersection: `O(|a| + |b|)` linear merge, no string clones.
    pub fn intersect(&self, other: &NumKeySet) -> NumKeySet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.keys[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        NumKeySet { keys: out }
    }

    /// `|self ∩ other|` without allocating: a linear two-pointer merge for
    /// comparably-sized sets, galloping binary search of the larger set
    /// when the sizes differ by more than [`GALLOP_RATIO`]×.
    pub fn overlap_count(&self, other: &NumKeySet) -> usize {
        let (small, large) = if self.len() <= other.len() {
            (&self.keys, &other.keys)
        } else {
            (&other.keys, &self.keys)
        };
        if small.is_empty() {
            return 0;
        }
        if large.len() / small.len() >= GALLOP_RATIO {
            // Gallop: each probe searches only the suffix past the last hit.
            let mut lo = 0usize;
            let mut count = 0usize;
            for &k in small {
                match large[lo..].binary_search(&k) {
                    Ok(p) => {
                        count += 1;
                        lo += p + 1;
                    }
                    Err(p) => lo += p,
                }
                if lo >= large.len() {
                    break;
                }
            }
            count
        } else {
            let (mut i, mut j) = (0, 0);
            let mut count = 0usize;
            while i < small.len() && j < large.len() {
                match small[i].cmp(&large[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        count += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
            count
        }
    }

    /// The fraction of `self`'s keys also present in `other` — the paper's
    /// correlation measure. Returns `None` for an empty `self`.
    /// Bit-identical to [`KeySet::overlap_fraction`] on the interned sets.
    pub fn overlap_fraction(&self, other: &NumKeySet) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        Some(self.overlap_count(other) as f64 / self.len() as f64)
    }

    /// Internal consistency check: keys must be strictly increasing.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.keys.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("keys not strictly increasing at {} >= {}", w[0], w[1]));
            }
        }
        Ok(())
    }
}

impl FromIterator<u32> for NumKeySet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        NumKeySet::from_iter(iter)
    }
}

impl FromIterator<String> for KeySet {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        KeySet::from_iter(iter)
    }
}

impl<'a> FromIterator<&'a str> for KeySet {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Self {
        KeySet::from_iter(iter.into_iter().map(String::from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(items: &[&str]) -> KeySet {
        items.iter().copied().collect()
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let k = ks(&["b", "a", "b", "c", "a"]);
        assert_eq!(k.as_slice(), &["a", "b", "c"]);
    }

    #[test]
    fn lookup_and_contains() {
        let k = ks(&["alpha", "beta", "gamma"]);
        assert_eq!(k.index_of("beta"), Some(1));
        assert!(k.contains("gamma"));
        assert!(!k.contains("delta"));
        assert_eq!(k.key(0), "alpha");
    }

    #[test]
    fn intersect_union_minus() {
        let a = ks(&["a", "b", "c", "d"]);
        let b = ks(&["b", "d", "e"]);
        assert_eq!(a.intersect(&b).as_slice(), &["b", "d"]);
        assert_eq!(a.union(&b).as_slice(), &["a", "b", "c", "d", "e"]);
        assert_eq!(a.minus(&b).as_slice(), &["a", "c"]);
        assert_eq!(b.minus(&a).as_slice(), &["e"]);
    }

    #[test]
    fn empty_set_algebra() {
        let a = ks(&["x"]);
        let e = KeySet::new();
        assert_eq!(a.intersect(&e), e);
        assert_eq!(a.union(&e), a);
        assert_eq!(a.minus(&e), a);
        assert_eq!(e.minus(&a), e);
    }

    #[test]
    fn overlap_fraction_basics() {
        let a = ks(&["a", "b", "c", "d"]);
        let b = ks(&["b", "d", "e"]);
        assert_eq!(a.overlap_fraction(&b), Some(0.5));
        assert_eq!(KeySet::new().overlap_fraction(&a), None);
        assert_eq!(a.overlap_fraction(&KeySet::new()), Some(0.0));
    }

    #[test]
    fn prefix_selection() {
        let k = ks(&["10.0.0.1", "10.0.0.2", "10.1.0.1", "192.168.0.1"]);
        assert_eq!(k.with_prefix("10.0.").len(), 2);
        assert_eq!(k.with_prefix("10.").len(), 3);
        assert_eq!(k.with_prefix("172.").len(), 0);
        assert_eq!(k.with_prefix("").len(), 4);
    }

    #[test]
    fn prefix_at_boundaries() {
        let k = ks(&["aa", "ab", "b"]);
        assert_eq!(k.with_prefix("a").as_slice(), &["aa", "ab"]);
        assert_eq!(k.with_prefix("b").as_slice(), &["b"]);
    }

    #[test]
    fn num_constructors_uphold_invariants() {
        let a = NumKeySet::from_iter([3u32, 1, 2, 2, 1]);
        a.check_invariants().unwrap();
        assert_eq!(a.as_slice(), &[1, 2, 3]);
        let b = NumKeySet::from_sorted_unique(vec![5, 9, 100]);
        b.check_invariants().unwrap();
        let e = NumKeySet::new();
        e.check_invariants().unwrap();
        assert!(e.is_empty());
        let via_strings =
            NumKeySet::from_key_set(&ks(&["001.002.003.004", "010.000.000.001"])).unwrap();
        via_strings.check_invariants().unwrap();
        assert_eq!(via_strings.as_slice(), &[0x0102_0304, 0x0A00_0001]);
        // Collected form too.
        let c: NumKeySet = [9u32, 7].into_iter().collect();
        c.check_invariants().unwrap();
    }

    #[test]
    fn num_from_key_set_rejects_non_ip_keys() {
        assert!(NumKeySet::from_key_set(&ks(&["not-an-ip"])).is_none());
        assert!(NumKeySet::from_key_set(&ks(&["001.002.003.004", "zebra"])).is_none());
    }

    #[test]
    fn num_round_trips_through_string_domain() {
        let num = NumKeySet::from_iter([0u32, 0x0A01_0203, u32::MAX]);
        let back = NumKeySet::from_key_set(&num.to_key_set()).unwrap();
        assert_eq!(num, back);
        num.to_key_set().check_invariants().unwrap();
    }

    #[test]
    fn num_intersect_matches_string_intersect() {
        let xs: Vec<u32> = (0..500).map(|i| i * 3).collect();
        let ys: Vec<u32> = (0..500).map(|i| i * 5 + 1).collect();
        let nx = NumKeySet::from_iter(xs.iter().copied());
        let ny = NumKeySet::from_iter(ys.iter().copied());
        let sx: KeySet = nx.to_key_set();
        let sy: KeySet = ny.to_key_set();
        assert_eq!(nx.intersect(&ny).to_key_set(), sx.intersect(&sy));
        assert_eq!(nx.overlap_count(&ny), sx.intersect(&sy).len());
        // Bit-identical fractions (same integer operands).
        assert_eq!(nx.overlap_fraction(&ny), sx.overlap_fraction(&sy));
        assert_eq!(NumKeySet::new().overlap_fraction(&nx), None);
        assert_eq!(nx.overlap_fraction(&NumKeySet::new()), Some(0.0));
    }

    #[test]
    fn gallop_and_linear_overlap_agree() {
        // Large/small ratio far above GALLOP_RATIO forces the gallop path;
        // compare against the allocation-based intersect (linear merge).
        let big = NumKeySet::from_iter((0..10_000u32).map(|i| i * 7));
        let small = NumKeySet::from_iter([0u32, 7, 13, 69993, 70000, 70001]);
        assert_eq!(small.overlap_count(&big), small.intersect(&big).len());
        assert_eq!(big.overlap_count(&small), small.overlap_count(&big));
        // Probe past the end of the large set stops cleanly.
        let past = NumKeySet::from_iter([1_000_000u32]);
        assert_eq!(past.overlap_count(&big), 0);
    }

    #[test]
    fn num_contains_and_iter() {
        let n = NumKeySet::from_iter([4u32, 2, 8]);
        assert!(n.contains(4));
        assert!(!n.contains(5));
        assert_eq!(n.iter().collect::<Vec<_>>(), vec![2, 4, 8]);
        assert_eq!(n.len(), 3);
    }
}
