//! A small tcpdump-style filter expression language.
//!
//! Validity filters are usually written in code ([`crate::filter`]); for
//! interactive tooling a textual form is handier. The grammar is the
//! familiar BPF subset:
//!
//! ```text
//! expr     := or
//! or       := and ("or" and)*
//! and      := unary ("and" unary)*
//! unary    := "not" unary | "(" expr ")" | primitive
//! primitive:= "proto" ("tcp"|"udp"|"icmp"|NUM)
//!           | ("src"|"dst") "net" IPV4 "/" NUM
//!           | ("src"|"dst") "host" IPV4
//!           | ("src"|"dst")? "port" NUM
//! ```
//!
//! Compiled expressions implement [`PacketFilter`], so they plug into the
//! constant-packet windower unchanged.

use crate::filter::PacketFilter;
use crate::packet::{Ip4, Packet, Protocol};

/// A compiled filter expression.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// Transport protocol equals.
    Proto(Protocol),
    /// Source address in CIDR prefix.
    SrcNet(Ip4, u8),
    /// Destination address in CIDR prefix.
    DstNet(Ip4, u8),
    /// Source port equals.
    SrcPort(u16),
    /// Destination port equals.
    DstPort(u16),
    /// Either port equals.
    Port(u16),
    /// Negation.
    Not(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
}

impl PacketFilter for Expr {
    fn accept(&self, p: &Packet) -> bool {
        match self {
            Expr::Proto(proto) => p.proto == *proto,
            Expr::SrcNet(net, len) => p.src.in_prefix(*net, *len),
            Expr::DstNet(net, len) => p.dst.in_prefix(*net, *len),
            Expr::SrcPort(port) => p.src_port == *port,
            Expr::DstPort(port) => p.dst_port == *port,
            Expr::Port(port) => p.src_port == *port || p.dst_port == *port,
            Expr::Not(inner) => !inner.accept(p),
            Expr::And(a, b) => a.accept(p) && b.accept(p),
            Expr::Or(a, b) => a.accept(p) || b.accept(p),
        }
    }
}

/// Parse errors with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Token index where it went wrong.
    pub at_token: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (at token {})", self.message, self.at_token)
    }
}

impl std::error::Error for ParseError {}

/// Parse a filter expression.
pub fn parse(input: &str) -> Result<Expr, ParseError> {
    let tokens: Vec<String> = input
        .replace('(', " ( ")
        .replace(')', " ) ")
        .split_whitespace()
        .map(str::to_string)
        .collect();
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.parse_or()?;
    if parser.pos != parser.tokens.len() {
        return Err(parser.err("unexpected trailing tokens"));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<String>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), at_token: self.pos }
    }

    fn peek(&self) -> Option<&str> {
        self.tokens.get(self.pos).map(|s| s.as_str())
    }

    fn next(&mut self) -> Result<String, ParseError> {
        let t = self
            .peek()
            .ok_or_else(|| self.err("unexpected end of expression"))?
            .to_string();
        self.pos += 1;
        Ok(t)
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_and()?;
        while self.peek() == Some("or") {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_unary()?;
        while self.peek() == Some("and") {
            self.pos += 1;
            let rhs = self.parse_unary()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Some("not") => {
                self.pos += 1;
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            Some("(") => {
                self.pos += 1;
                let inner = self.parse_or()?;
                if self.next()? != ")" {
                    return Err(self.err("expected ')'"));
                }
                Ok(inner)
            }
            _ => self.parse_primitive(),
        }
    }

    fn parse_primitive(&mut self) -> Result<Expr, ParseError> {
        let head = self.next()?;
        match head.as_str() {
            "proto" => {
                let t = self.next()?;
                let proto = match t.as_str() {
                    "tcp" => Protocol::Tcp,
                    "udp" => Protocol::Udp,
                    "icmp" => Protocol::Icmp,
                    n => Protocol::from_number(
                        n.parse().map_err(|_| self.err("bad protocol"))?,
                    ),
                };
                Ok(Expr::Proto(proto))
            }
            dir @ ("src" | "dst") => {
                let what = self.next()?;
                match what.as_str() {
                    "net" => {
                        let (net, len) = self.parse_cidr()?;
                        Ok(if dir == "src" {
                            Expr::SrcNet(net, len)
                        } else {
                            Expr::DstNet(net, len)
                        })
                    }
                    "host" => {
                        let ip = self.parse_ip()?;
                        Ok(if dir == "src" {
                            Expr::SrcNet(ip, 32)
                        } else {
                            Expr::DstNet(ip, 32)
                        })
                    }
                    "port" => {
                        let port = self.parse_port()?;
                        Ok(if dir == "src" {
                            Expr::SrcPort(port)
                        } else {
                            Expr::DstPort(port)
                        })
                    }
                    _ => Err(self.err("expected net/host/port after src/dst")),
                }
            }
            "port" => Ok(Expr::Port(self.parse_port()?)),
            other => Err(ParseError {
                message: format!("unexpected token '{other}'"),
                at_token: self.pos - 1,
            }),
        }
    }

    fn parse_ip(&mut self) -> Result<Ip4, ParseError> {
        self.next()?.parse().map_err(|_| self.err("bad IPv4 address"))
    }

    fn parse_cidr(&mut self) -> Result<(Ip4, u8), ParseError> {
        let t = self.next()?;
        let (addr, len) =
            t.split_once('/').ok_or_else(|| self.err("expected a.b.c.d/len"))?;
        let ip: Ip4 = addr.parse().map_err(|_| self.err("bad IPv4 address"))?;
        let len: u8 = len.parse().map_err(|_| self.err("bad prefix length"))?;
        if len > 32 {
            return Err(self.err("prefix length exceeds 32"));
        }
        Ok((ip, len))
    }

    fn parse_port(&mut self) -> Result<u16, ParseError> {
        self.next()?.parse().map_err(|_| self.err("bad port"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: &str, dst: &str, proto: Protocol, sp: u16, dp: u16) -> Packet {
        Packet {
            ts_micros: 0,
            src: src.parse().unwrap(),
            dst: dst.parse().unwrap(),
            proto,
            src_port: sp,
            dst_port: dp,
            length: 40,
        }
    }

    #[test]
    fn primitives_match() {
        let scan = pkt("1.2.3.4", "44.9.9.9", Protocol::Tcp, 50000, 445);
        assert!(parse("proto tcp").unwrap().accept(&scan));
        assert!(!parse("proto udp").unwrap().accept(&scan));
        assert!(parse("dst net 44.0.0.0/8").unwrap().accept(&scan));
        assert!(!parse("dst net 45.0.0.0/8").unwrap().accept(&scan));
        assert!(parse("src host 1.2.3.4").unwrap().accept(&scan));
        assert!(parse("dst port 445").unwrap().accept(&scan));
        assert!(parse("port 445").unwrap().accept(&scan));
        assert!(parse("src port 50000").unwrap().accept(&scan));
        assert!(!parse("src port 445").unwrap().accept(&scan));
    }

    #[test]
    fn boolean_structure() {
        let scan = pkt("1.2.3.4", "44.9.9.9", Protocol::Tcp, 50000, 445);
        let dns = pkt("8.8.8.8", "44.0.0.1", Protocol::Udp, 53, 53);
        let e = parse("proto tcp and dst net 44.0.0.0/8 and not port 22").unwrap();
        assert!(e.accept(&scan));
        assert!(!e.accept(&dns));
        let either = parse("port 445 or port 53").unwrap();
        assert!(either.accept(&scan));
        assert!(either.accept(&dns));
    }

    #[test]
    fn precedence_and_parens() {
        // "a or b and c" parses as "a or (b and c)".
        let e = parse("port 1 or port 2 and proto udp").unwrap();
        let tcp2 = pkt("1.1.1.1", "2.2.2.2", Protocol::Tcp, 2, 2);
        assert!(!e.accept(&tcp2), "and binds tighter than or");
        let grouped = parse("( port 1 or port 2 ) and proto udp").unwrap();
        let udp2 = pkt("1.1.1.1", "2.2.2.2", Protocol::Udp, 2, 9);
        assert!(grouped.accept(&udp2));
        assert!(!grouped.accept(&tcp2));
    }

    #[test]
    fn icmp_and_numeric_protocols() {
        let ping = pkt("1.1.1.1", "44.0.0.9", Protocol::Icmp, 0, 0);
        assert!(parse("proto icmp").unwrap().accept(&ping));
        assert!(parse("proto 1").unwrap().accept(&ping));
        assert!(parse("not proto 6").unwrap().accept(&ping));
    }

    #[test]
    fn double_negation() {
        let p = pkt("1.1.1.1", "2.2.2.2", Protocol::Tcp, 1, 2);
        assert!(parse("not not proto tcp").unwrap().accept(&p));
    }

    #[test]
    fn parse_errors_are_located() {
        for bad in [
            "",
            "proto",
            "proto banana",
            "src net 1.2.3.4",      // missing /len
            "dst net 1.2.3.4/40",   // bad length
            "port eleventy",
            "( proto tcp",          // unclosed
            "proto tcp garbage",    // trailing
            "src frobnicate 1.1.1.1",
        ] {
            assert!(parse(bad).is_err(), "should reject: {bad:?}");
        }
    }

    #[test]
    fn windower_integration() {
        use crate::window::ConstantPacketWindower;
        let filter = parse("dst net 44.0.0.0/8 and proto tcp").unwrap();
        let stream = (0..100u32).map(|i| {
            pkt(
                "9.9.9.9",
                if i % 2 == 0 { "44.1.1.1" } else { "45.1.1.1" },
                if i % 4 < 2 { Protocol::Tcp } else { Protocol::Udp },
                1,
                2,
            )
        });
        let windows: Vec<_> = ConstantPacketWindower::new(stream, filter, 10).collect();
        // 25 packets match (even index and i%4<2 -> i%4==0).
        assert_eq!(windows.len(), 2);
        assert!(windows
            .iter()
            .flat_map(|w| &w.packets)
            .all(|p| p.proto == Protocol::Tcp && (p.dst.0 >> 24) == 44));
    }
}
