//! Conversions between GraphBLAS hypersparse matrices and associative
//! arrays.
//!
//! The paper's workflow: "After the unique sources and packet counts are
//! computed from the CAIDA Telescope GraphBLAS matrices, the reduced results
//! are converted to D4M associative arrays to facilitate correlation with
//! the GreyNoise D4M associative arrays." These functions are that bridge.

use crate::{Assoc, KeySet, NumAssoc};
use obscor_hypersparse::{reduce, Csr, Index, Value};

/// Render an IPv4 index in dotted-quad form (the D4M string key format).
pub fn ip_key(ip: Index) -> String {
    format!(
        "{:03}.{:03}.{:03}.{:03}",
        (ip >> 24) & 0xFF,
        (ip >> 16) & 0xFF,
        (ip >> 8) & 0xFF,
        ip & 0xFF
    )
}

/// Parse a dotted-quad key produced by [`ip_key`] (zero-padded or not).
pub fn parse_ip_key(key: &str) -> Option<Index> {
    let mut parts = key.split('.');
    let mut ip: u32 = 0;
    for _ in 0..4 {
        let octet: u32 = parts.next()?.parse().ok()?;
        if octet > 255 {
            return None;
        }
        ip = (ip << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(ip)
}

/// Convert a full traffic matrix into a numeric associative array with
/// dotted-quad row/column keys.
pub fn traffic_matrix_to_assoc<V: Value>(a: &Csr<V>) -> NumAssoc {
    let triples: Vec<(String, String, f64)> =
        a.iter().map(|(r, c, v)| (ip_key(r), ip_key(c), v.to_f64())).collect();
    Assoc::from_triples_sum(triples)
}

/// Reduce a traffic matrix to the paper's correlation input: a one-column
/// associative array mapping each source key to its packet count `d`.
pub fn source_packets_to_assoc<V: Value>(a: &Csr<V>) -> NumAssoc {
    let triples: Vec<(String, String, f64)> = reduce::source_packets(a)
        .into_iter()
        .map(|(src, d)| (ip_key(src), "packets".to_string(), d as f64))
        .collect();
    Assoc::from_triples_sum(triples)
}

/// The source key set of a traffic matrix (rows with at least one packet).
pub fn source_key_set<V: Value>(a: &Csr<V>) -> KeySet {
    a.row_keys().iter().map(|&r| ip_key(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_hypersparse::Coo;

    #[test]
    fn ip_key_is_sortable_dotted_quad() {
        assert_eq!(ip_key(0x01010101), "001.001.001.001");
        assert_eq!(ip_key(0xC0A80001), "192.168.000.001");
        // Zero padding makes lexicographic order equal numeric order.
        assert!(ip_key(0x0A000001) < ip_key(0x0B000001));
        assert!(ip_key(2) < ip_key(10));
    }

    #[test]
    fn parse_round_trips() {
        for ip in [0u32, 1, 0xFFFFFFFF, 0xC0A80001, 16843009] {
            assert_eq!(parse_ip_key(&ip_key(ip)), Some(ip));
        }
        assert_eq!(parse_ip_key("1.2.3.4"), Some(0x01020304));
        assert_eq!(parse_ip_key("256.0.0.1"), None);
        assert_eq!(parse_ip_key("1.2.3"), None);
        assert_eq!(parse_ip_key("1.2.3.4.5"), None);
        assert_eq!(parse_ip_key("a.b.c.d"), None);
    }

    #[test]
    fn traffic_matrix_conversion_keeps_counts() {
        let mut coo = Coo::new();
        coo.push(16843009, 33686018, 3u64); // the paper's worked example
        let a = coo.into_csr();
        let assoc = traffic_matrix_to_assoc(&a);
        assert_eq!(assoc.get("001.001.001.001", "002.002.002.002"), Some(&3.0));
    }

    #[test]
    fn source_packets_reduction() {
        let a = Coo::from_triples(vec![(1u32, 10u32, 2u64), (1, 11, 3), (2, 10, 1)]).into_csr();
        let s = source_packets_to_assoc(&a);
        assert_eq!(s.get(&ip_key(1), "packets"), Some(&5.0));
        assert_eq!(s.get(&ip_key(2), "packets"), Some(&1.0));
        assert_eq!(s.n_rows(), 2);
    }

    #[test]
    fn source_key_set_matches_rows() {
        let a = Coo::from_triples(vec![(9u32, 1u32, 1u64), (7, 1, 1)]).into_csr();
        let ks = source_key_set(&a);
        assert_eq!(ks.len(), 2);
        assert!(ks.contains(&ip_key(7)));
        assert!(ks.contains(&ip_key(9)));
    }
}
