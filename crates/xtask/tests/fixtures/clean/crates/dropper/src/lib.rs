// `panic-in-drop` negatives: an infallible destructor, and an inherent
// method named `drop` that is not `Drop::drop`.

pub fn must_flush(pending: &[u8]) {
    if pending.len() > 4 {
        panic!("flush overflow");
    }
}

pub struct Flusher {
    pub pending: Vec<u8>,
}

impl Drop for Flusher {
    fn drop(&mut self) {
        let _ = self.pending.pop();
    }
}

pub struct Manual;

impl Manual {
    pub fn drop(&mut self) {
        must_flush(&[]);
    }
}
