//! Cross-file symbol index for the audit engine.
//!
//! Maps function names to their definition sites across the scanned
//! workspace and computes the set of functions that reach the
//! `obscor_obs::json` codec within one call hop — the taint sink the
//! `map-iter-order` rule uses: a `HashMap` iteration whose extent calls a
//! json-reaching function is leaking nondeterministic iteration order into
//! serialized output.
//!
//! The index is name-based (no type resolution): a call site is any
//! identifier directly followed by `(`, including method calls. That makes
//! the taint set a deliberate over-approximation — acceptable for a lint
//! whose findings are per-site suppressible and ratcheted by the baseline.

use std::collections::{HashMap, HashSet};

use crate::lex::TokKind;
use crate::scan::SourceFile;

/// One function definition site.
#[derive(Debug, Clone)]
pub struct DefSite {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// The cross-file symbol index.
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Function name -> definition sites across all scanned files.
    pub defs: HashMap<String, Vec<DefSite>>,
    /// Function names that reach the `obscor_obs::json` codec in at most
    /// one call hop: codec functions themselves (defined in
    /// `obs/src/json.rs` or referencing the `obscor_obs::json` /
    /// `json::<fn>` path) plus their direct callers.
    pub json_reaching: HashSet<String>,
}

impl SymbolIndex {
    /// Whether `name` is a known function definition.
    pub fn is_defined(&self, name: &str) -> bool {
        self.defs.contains_key(name)
    }
}

/// Build the index over every scanned library file.
pub fn build_index(files: &[&SourceFile]) -> SymbolIndex {
    let mut defs: HashMap<String, Vec<DefSite>> = HashMap::new();
    // Level 0: functions that touch the codec directly.
    let mut level0: HashSet<String> = HashSet::new();
    // (fn name, called names) pairs for the one-hop pass.
    let mut call_map: Vec<(String, HashSet<String>)> = Vec::new();

    for file in files {
        let in_codec_file = file.rel.ends_with("obs/src/json.rs");
        for item in &file.items {
            if !matches!(item.kind, crate::parse::ItemKind::Fn) {
                continue;
            }
            defs.entry(item.name.clone()).or_default().push(DefSite {
                file: file.rel.clone(),
                line: file.tok_line(item.kw_tok),
            });
            let Some((open, close)) = item.body else { continue };
            let body = open + 1..close;
            if in_codec_file || body_touches_codec(file, body.clone()) {
                level0.insert(item.name.clone());
            }
            call_map.push((item.name.clone(), called_names(file, body)));
        }
    }

    // Level 1: direct callers of level-0 functions.
    let mut json_reaching = level0.clone();
    // audit:allow(map-iter-order) — call_map is a Vec; its HashSets are membership-tested, never iterated
    for (name, calls) in &call_map {
        if calls.iter().any(|c| level0.contains(c)) {
            json_reaching.insert(name.clone());
        }
    }
    SymbolIndex { defs, json_reaching }
}

/// Does the body reference the codec path — `obscor_obs :: json` or a
/// qualified `json :: <fn>` call?
fn body_touches_codec(file: &SourceFile, body: std::ops::Range<usize>) -> bool {
    for i in body.clone() {
        if file.toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = file.tok_text(i);
        if t == "obscor_obs"
            && i + 2 < body.end
            && file.tok_text(i + 1) == "::"
            && file.tok_text(i + 2) == "json"
        {
            return true;
        }
        if t == "json"
            && i + 2 < body.end
            && file.tok_text(i + 1) == "::"
            && file.toks[i + 2].kind == TokKind::Ident
        {
            return true;
        }
    }
    false
}

/// Every identifier in `body` directly followed by `(` — free calls and
/// method calls alike (`helper(x)`, `self.helper(x)`).
fn called_names(file: &SourceFile, body: std::ops::Range<usize>) -> HashSet<String> {
    let mut out = HashSet::new();
    for i in body.clone() {
        if file.toks[i].kind == TokKind::Ident
            && i + 1 < body.end
            && file.toks[i + 1].kind == TokKind::Open
            && file.tok_text(i + 1) == "("
        {
            // `fn name(` is a definition, not a call.
            if i > 0 && file.tok_text(i - 1) == "fn" {
                continue;
            }
            out.insert(file.tok_text(i).to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn prep(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from(rel), rel.into(), src.to_string())
    }

    #[test]
    fn codec_file_fns_are_level_zero() {
        let codec = prep(
            "crates/obs/src/json.rs",
            "pub fn escape(s: &str) -> String { s.into() }\n",
        );
        let idx = build_index(&[&codec]);
        assert!(idx.json_reaching.contains("escape"));
        assert!(idx.is_defined("escape"));
    }

    #[test]
    fn one_hop_taint_crosses_files() {
        let codec = prep(
            "crates/obs/src/json.rs",
            "pub fn escape(s: &str) -> String { s.into() }\n",
        );
        let helper = prep(
            "crates/a/src/emit.rs",
            "pub fn row_line(k: u32) -> String { escape(&k.to_string()) }\n",
        );
        let far = prep(
            "crates/b/src/far.rs",
            "pub fn two_hops(k: u32) -> String { row_line(k) }\n",
        );
        let idx = build_index(&[&codec, &helper, &far]);
        assert!(idx.json_reaching.contains("escape"), "level 0");
        assert!(idx.json_reaching.contains("row_line"), "one hop");
        assert!(!idx.json_reaching.contains("two_hops"), "taint is one hop only");
    }

    #[test]
    fn qualified_codec_path_taints_directly() {
        let user = prep(
            "crates/a/src/dump.rs",
            "pub fn dump(v: u64) -> String { obscor_obs::json::escape(&v.to_string()) }\npub fn via_mod(v: u64) -> String { json::escape(&v.to_string()) }\npub fn unrelated(v: u64) -> u64 { v + 1 }\n",
        );
        let idx = build_index(&[&user]);
        assert!(idx.json_reaching.contains("dump"));
        assert!(idx.json_reaching.contains("via_mod"));
        assert!(!idx.json_reaching.contains("unrelated"));
    }
}
