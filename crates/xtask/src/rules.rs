//! The six audit rules.
//!
//! Each rule scans preprocessed [`SourceFile`]s (comments/strings blanked,
//! test lines marked) and emits [`Diagnostic`]s. Rules are suppressible
//! per-site with an inline `// audit:allow(<rule>) — justification` marker
//! on the offending line or the line above it.
//!
//! | rule                 | scope                                  | what it catches |
//! |----------------------|----------------------------------------|-----------------|
//! | `index-cast`         | all library code                       | truncating `as u32` / `as usize` / `as Index` casts whose source context mentions a wider type |
//! | `panic-path`         | `core`, `hypersparse`, `assoc`, `anonymize`, `telescope`, `pcap` lib code | `unwrap()`, `expect(...)`, `panic!`, `unreachable!`, `todo!` |
//! | `float-eq`           | `stats` lib code + `core/src/fitscan.rs` | `==` / `!=` between floating-point expressions |
//! | `invariant-coverage` | `hypersparse`, `assoc`                 | public constructors not exercised by any `check_invariants` test |
//! | `instant-timing`     | all library code except `obs`          | ad-hoc `Instant::now()` / `SystemTime::now()` timing outside the metrics layer |
//! | `key-pack`           | `hypersparse` lib code except `keypack.rs` | ad-hoc `as u64` + `<< 32` key packing outside the shared `keypack` helper |

use crate::scan::{find_token, has_token, SourceFile};

/// One audit finding, pointing at a concrete `file:line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (e.g. `panic-path`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Render as the canonical `file:line: [rule] message` form.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Crates whose library code must be panic-free. `telescope` and `pcap`
/// joined with the fault-recovery layer: both sit on the archive/ingest
/// path, where a corrupt input must surface as a classified error
/// (transient vs permanent), never a panic.
pub const PANIC_FREE_CRATES: &[&str] =
    &["core", "hypersparse", "assoc", "anonymize", "telescope", "pcap"];

/// Crates whose public constructors require invariant-test coverage.
pub const INVARIANT_CRATES: &[&str] = &["hypersparse", "assoc"];

/// Rule `index-cast`: flag `as u32` / `as Index` / `as usize` casts whose
/// surrounding expression mentions a wider source type, i.e. the places a
/// silent truncation can corrupt an index. Pure narrowing of already-narrow
/// values (e.g. `u8 as u32`) carries no wide-source marker and passes.
pub fn rule_index_cast(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "index-cast";
    let mut out = Vec::new();
    for (line_no, line) in file.code_lines() {
        if file.is_test_line(line_no) || file.is_allowed(RULE, line_no) {
            continue;
        }
        for target in ["u32", "usize", "Index"] {
            let mut from = 0;
            while let Some(as_pos) = find_token(line, "as", from) {
                from = as_pos + 2;
                let after = line[as_pos + 2..].trim_start();
                if !after.starts_with(target)
                    || after[target.len()..]
                        .starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_')
                {
                    continue;
                }
                let left = &line[..as_pos];
                let wide = match target {
                    // usize is 64-bit here; only 64-bit+ sources can truncate.
                    "usize" => ["u64", "i64", "u128", "i128", "f64"]
                        .iter()
                        .any(|t| has_token(left, t)),
                    // u32 / Index also truncate from usize-width sources.
                    _ => {
                        ["u64", "i64", "u128", "i128", "f64", "usize"]
                            .iter()
                            .any(|t| has_token(left, t))
                            || left.contains(".len()")
                            || left.contains(">>")
                            || left.contains("<<")
                    }
                };
                if wide {
                    out.push(Diagnostic {
                        rule: RULE,
                        file: file.rel.clone(),
                        line: line_no,
                        message: format!(
                            "truncating `as {target}` cast from a wide source; use \
                             `try_from`/`try_into` or annotate with audit:allow({RULE})"
                        ),
                    });
                    break; // one diagnostic per line per target is enough
                }
            }
        }
    }
    out
}

/// Rule `panic-path`: no `unwrap` / `expect` / `panic!` / `unreachable!` /
/// `todo!` in library code of the panic-free crates. Test code is exempt.
pub fn rule_panic_path(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "panic-path";
    let mut out = Vec::new();
    for (line_no, line) in file.code_lines() {
        if file.is_test_line(line_no) || file.is_allowed(RULE, line_no) {
            continue;
        }
        for (needle, label) in [
            (".unwrap()", "`unwrap()`"),
            (".expect(", "`expect(...)`"),
            ("panic!", "`panic!`"),
            ("unreachable!", "`unreachable!`"),
            ("todo!", "`todo!`"),
            ("unimplemented!", "`unimplemented!`"),
        ] {
            let hit = if needle.starts_with('.') {
                line.contains(needle)
            } else {
                // Macro names must be whole tokens (`catch_panic!` is fine).
                find_token(line, needle.trim_end_matches('!'), 0)
                    .is_some_and(|p| line[p..].trim_start_matches(char::is_alphanumeric)
                        .trim_start_matches('_')
                        .starts_with('!'))
            };
            if hit {
                // `debug_assert!`-style macros legitimately contain `panic`
                // semantics but are debug-only; they never match the needles
                // above, so no carve-out is needed.
                out.push(Diagnostic {
                    rule: RULE,
                    file: file.rel.clone(),
                    line: line_no,
                    message: format!(
                        "{label} in panic-free library code; return a Result or \
                         annotate a documented contract with audit:allow({RULE})"
                    ),
                });
            }
        }
    }
    out
}

/// Rule `float-eq`: no `==` / `!=` where either side shows floating-point
/// evidence (an `f64`/`f32` token or a float literal on the line).
pub fn rule_float_eq(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "float-eq";
    let mut out = Vec::new();
    for (line_no, line) in file.code_lines() {
        if file.is_test_line(line_no) || file.is_allowed(RULE, line_no) {
            continue;
        }
        if !line_has_float_evidence(line) {
            continue;
        }
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            let two = &bytes[i..i + 2];
            let is_eq = two == b"==";
            let is_ne = two == b"!=";
            if (is_eq || is_ne)
                && (i == 0 || !matches!(bytes[i - 1], b'<' | b'>' | b'!' | b'=' | b'&' | b'|'))
                && (i + 2 >= bytes.len() || bytes[i + 2] != b'=')
            {
                out.push(Diagnostic {
                    rule: RULE,
                    file: file.rel.clone(),
                    line: line_no,
                    message: format!(
                        "floating-point `{}` comparison; use an epsilon/ULP helper or \
                         total ordering, or annotate with audit:allow({RULE})",
                        if is_eq { "==" } else { "!=" }
                    ),
                });
                i += 2;
                continue;
            }
            i += 1;
        }
    }
    out
}

/// Rule `instant-timing`: no ad-hoc wall-clock timing (`Instant::now()`,
/// `SystemTime::now()`) in library code outside the `obs` crate. All timing
/// must flow through `obscor_obs::span` so measurements land in the metrics
/// registry — and therefore in `--metrics` dumps and `BENCH_pipeline.json` —
/// instead of scattering one-off stderr prints. The caller (`audit`) skips
/// the `obs` crate itself, which hosts the one sanctioned `Instant::now()`.
pub fn rule_instant_timing(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "instant-timing";
    let mut out = Vec::new();
    for (line_no, line) in file.code_lines() {
        if file.is_test_line(line_no) || file.is_allowed(RULE, line_no) {
            continue;
        }
        for needle in ["Instant::now", "SystemTime::now"] {
            let mut from = 0;
            while let Some(pos) = line[from..].find(needle).map(|p| p + from) {
                from = pos + needle.len();
                // Whole-token on the left (`MyInstant::now` is fine); the
                // right edge is already non-ident (`(`, whitespace, ...).
                let bounded = pos == 0
                    || !matches!(line.as_bytes()[pos - 1],
                        b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_');
                if bounded {
                    out.push(Diagnostic {
                        rule: RULE,
                        file: file.rel.clone(),
                        line: line_no,
                        message: format!(
                            "ad-hoc `{needle}()` timing outside the obs crate; use \
                             `obscor_obs::span` / `SpanTimer` so the measurement lands \
                             in the metrics registry, or annotate with audit:allow({RULE})"
                        ),
                    });
                    break; // one diagnostic per line per needle is enough
                }
            }
        }
    }
    out
}

/// Rule `key-pack`: no ad-hoc `(x as u64) << 32` key packing in the
/// `hypersparse` crate outside `keypack.rs`. The packed `(row << 32) | col`
/// key layout is load-bearing for the radix compaction kernel and the DCSC
/// sort order; every construction site must go through
/// `keypack::pack_key` / `unpack_key` so the layout can only change in one
/// place. A line trips when it contains both an `as u64` cast and a
/// `<< 32` shift. The caller (`audit`) applies this to `hypersparse` only;
/// the rule itself exempts `keypack.rs`.
pub fn rule_key_pack(file: &SourceFile) -> Vec<Diagnostic> {
    const RULE: &str = "key-pack";
    if file.rel.ends_with("keypack.rs") {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (line_no, line) in file.code_lines() {
        if file.is_test_line(line_no) || file.is_allowed(RULE, line_no) {
            continue;
        }
        if !has_shift_32(line) {
            continue;
        }
        let mut from = 0;
        while let Some(as_pos) = find_token(line, "as", from) {
            from = as_pos + 2;
            let after = line[as_pos + 2..].trim_start();
            let cast_u64 = after.starts_with("u64")
                && !after["u64".len()..]
                    .starts_with(|c: char| c.is_ascii_alphanumeric() || c == '_');
            if cast_u64 {
                out.push(Diagnostic {
                    rule: RULE,
                    file: file.rel.clone(),
                    line: line_no,
                    message: format!(
                        "ad-hoc `as u64` + `<< 32` key packing; route key \
                         construction through `keypack::pack_key` / \
                         `unpack_key`, or annotate with audit:allow({RULE})"
                    ),
                });
                break; // one diagnostic per line is enough
            }
        }
    }
    out
}

/// True when `line` contains a `<< 32` shift (any spacing, but not a longer
/// literal like `<< 320`).
fn has_shift_32(line: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find("<<").map(|p| p + from) {
        from = pos + 2;
        let rest = line[pos + 2..].trim_start();
        if rest.starts_with("32")
            && !rest[2..].starts_with(|c: char| c.is_ascii_digit() || c == '_' || c == '.')
        {
            return true;
        }
    }
    false
}

/// Float evidence: an `f64`/`f32` token or a numeric literal with a decimal
/// point (`1.0`, `2.5e-3`). Integer-only lines never match.
fn line_has_float_evidence(line: &str) -> bool {
    if has_token(line, "f64") || has_token(line, "f32") {
        return true;
    }
    let bytes = line.as_bytes();
    for i in 1..bytes.len().saturating_sub(1) {
        if bytes[i] == b'.'
            && bytes[i - 1].is_ascii_digit()
            && bytes[i + 1].is_ascii_digit()
            // Exclude tuple-index-like `x.0.1` chains: require the char before
            // the leading digit run to not be `.` or identifier-ish.
            && {
                let mut j = i - 1;
                while j > 0 && bytes[j - 1].is_ascii_digit() {
                    j -= 1;
                }
                j == 0 || !(bytes[j - 1] == b'.' || bytes[j - 1].is_ascii_alphanumeric() || bytes[j - 1] == b'_')
            }
        {
            return true;
        }
    }
    false
}

/// A public constructor discovered by [`find_constructors`].
#[derive(Debug, Clone)]
pub struct Constructor {
    /// The type the `impl` block belongs to.
    pub type_name: String,
    /// The function name.
    pub fn_name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// Find `pub fn` constructors (no `self` receiver, returns `Self` or the
/// impl type) in inherent `impl` blocks of `file`.
pub fn find_constructors(file: &SourceFile) -> Vec<Constructor> {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(impl_pos) = find_token(code, "impl", search) {
        search = impl_pos + 4;
        // Header runs to the opening brace.
        let Some(brace_rel) = code[impl_pos..].find('{') else { break };
        let brace = impl_pos + brace_rel;
        let header = &code[impl_pos..brace];
        // Skip trait impls (`impl Trait for Type`).
        if has_token(header, "for") {
            continue;
        }
        let Some(type_name) = impl_type_name(header) else { continue };
        // Match braces to find the impl body span.
        let mut depth = 0usize;
        let mut end = brace;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        let body = &code[brace..end.min(bytes.len())];
        let body_offset = brace;
        let mut fns = 0;
        while let Some(pub_rel) = find_token(body, "pub", fns) {
            fns = pub_rel + 3;
            let after_pub = body[pub_rel + 3..].trim_start();
            // `pub(crate) fn` etc. are not public API.
            if !after_pub.starts_with("fn") {
                continue;
            }
            let fn_rel = pub_rel + 3 + (body[pub_rel + 3..].len() - after_pub.len());
            let rest = &body[fn_rel + 2..];
            let rest = rest.trim_start();
            let name: String = rest
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                .collect();
            if name.is_empty() {
                continue;
            }
            // Find the parameter list: the first `(` outside the generic
            // parameter list (`Fn(..)` bounds inside `<..>` don't count).
            let Some(paren_rel) = param_list_paren(rest) else { continue };
            let params_and_on = &rest[paren_rel..];
            let Some(close) = matching_paren(params_and_on) else { continue };
            let params = &params_and_on[1..close];
            let first_param = params.split(',').next().unwrap_or("");
            if has_token(first_param, "self") {
                continue; // a method, not a constructor
            }
            // Return type between `)` and the body `{` (or `;`).
            let after_params = &params_and_on[close + 1..];
            let sig_end = after_params
                .find(['{', ';'])
                .unwrap_or(after_params.len());
            let ret = &after_params[..sig_end];
            let Some(arrow) = ret.find("->") else { continue };
            let ret_ty = &ret[arrow + 2..];
            if has_token(ret_ty, "Self") || has_token(ret_ty, &type_name) {
                let abs = body_offset + fn_rel;
                let line = 1 + code[..abs].bytes().filter(|&b| b == b'\n').count();
                if file.is_test_line(line) || file.is_allowed("invariant-coverage", line) {
                    continue;
                }
                out.push(Constructor {
                    type_name: type_name.clone(),
                    fn_name: name,
                    file: file.rel.clone(),
                    line,
                });
            }
        }
        search = end.max(search);
    }
    out
}

/// Offset of the first `(` at angle-bracket depth 0, skipping the `>` of
/// `->` arrows inside generic bounds like `<F: Fn(V, V) -> V>`.
fn param_list_paren(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut depth = 0usize;
    for i in 0..bytes.len() {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && bytes[i - 1] != b'-' => depth = depth.saturating_sub(1),
            b'(' if depth == 0 => return Some(i),
            b'{' | b';' => return None,
            _ => {}
        }
    }
    None
}

/// Offset of the `)` matching the `(` at byte 0 of `s`.
fn matching_paren(s: &str) -> Option<usize> {
    let mut depth = 0usize;
    for (i, b) in s.bytes().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Extract `Csr` from headers like `impl<V: Value> Csr<V>`.
fn impl_type_name(header: &str) -> Option<String> {
    let mut rest = header.trim_start().strip_prefix("impl")?;
    // Skip generic parameter list.
    if rest.trim_start().starts_with('<') {
        let s = rest.trim_start();
        let mut depth = 0usize;
        let mut cut = s.len();
        for (i, c) in s.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        cut = i + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        rest = &s[cut..];
    }
    let ty = rest.trim();
    // Last path segment before any generic args.
    let base = ty.split('<').next()?.trim();
    let name = base.rsplit("::").next()?.trim();
    let name: String = name
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() || !name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
        None
    } else {
        Some(name)
    }
}

/// Rule `invariant-coverage`, run over a whole crate at once:
///
/// * every type in an invariant crate that defines `check_invariants` must
///   have each of its public constructors mentioned, together with the type
///   name, in some test source that also calls `check_invariants`;
/// * a type with public constructors but *no* `check_invariants` method is
///   itself a finding (anchored at its first constructor).
///
/// `lib_files` are the crate's library sources; `test_corpus` is the
/// concatenation of every test source that mentions `check_invariants`
/// (crate `tests/` files plus `#[cfg(test)]` regions).
pub fn rule_invariant_coverage(
    lib_files: &[SourceFile],
    test_corpus: &str,
) -> Vec<Diagnostic> {
    const RULE: &str = "invariant-coverage";
    let mut out = Vec::new();
    // Types that define check_invariants anywhere in this crate.
    let mut checked_types = std::collections::HashSet::new();
    for f in lib_files {
        let code = &f.code;
        let mut search = 0;
        while let Some(pos) = find_token(code, "check_invariants", search) {
            search = pos + 1;
            // Attribute to the nearest enclosing inherent impl: rescan impls.
            for c in find_impl_spans(f) {
                if c.1 <= pos && pos < c.2 {
                    checked_types.insert(c.0.clone());
                }
            }
        }
    }
    for f in lib_files {
        for ctor in find_constructors(f) {
            if !checked_types.contains(&ctor.type_name) {
                out.push(Diagnostic {
                    rule: RULE,
                    file: ctor.file.clone(),
                    line: ctor.line,
                    message: format!(
                        "type `{}` has public constructor `{}` but no \
                         `check_invariants()` method",
                        ctor.type_name, ctor.fn_name
                    ),
                });
                continue;
            }
            let covered = has_token(test_corpus, &ctor.type_name)
                && has_token(test_corpus, &ctor.fn_name);
            if !covered {
                out.push(Diagnostic {
                    rule: RULE,
                    file: ctor.file,
                    line: ctor.line,
                    message: format!(
                        "public constructor `{}::{}` is not exercised by any \
                         `check_invariants` test",
                        ctor.type_name, ctor.fn_name
                    ),
                });
            }
        }
    }
    out
}

/// All inherent-impl spans in a file: `(type_name, start_byte, end_byte)`.
fn find_impl_spans(file: &SourceFile) -> Vec<(String, usize, usize)> {
    let code = &file.code;
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut search = 0;
    while let Some(impl_pos) = find_token(code, "impl", search) {
        search = impl_pos + 4;
        let Some(brace_rel) = code[impl_pos..].find('{') else { break };
        let brace = impl_pos + brace_rel;
        let header = &code[impl_pos..brace];
        if has_token(header, "for") {
            continue;
        }
        let Some(name) = impl_type_name(header) else { continue };
        let mut depth = 0usize;
        let mut end = brace;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        out.push((name, impl_pos, end.min(bytes.len())));
        search = end.max(search);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn prep(src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from("mem.rs"), "mem.rs".into(), src.to_string())
    }

    #[test]
    fn index_cast_flags_wide_sources_only() {
        let f = prep("let a = (x as u64 * 3) as u32;\nlet b = small_u8 as u32;\nlet c = v.len() as u32;\n");
        let d = rule_index_cast(&f);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn index_cast_allow_marker() {
        let f = prep("// audit:allow(index-cast) — bounded by construction\nlet a = v.len() as u32;\n");
        assert!(rule_index_cast(&f).is_empty());
    }

    #[test]
    fn panic_path_flags_lib_not_tests() {
        let src = "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests { fn t() { None::<u8>.unwrap(); } }\n";
        let f = prep(src);
        let d = rule_panic_path(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn panic_macros_are_whole_tokens() {
        let f = prep("my_panic!(x);\nlog_unreachable!(y);\n");
        assert!(rule_panic_path(&f).is_empty());
        let g = prep("panic!(\"boom\");\n");
        assert_eq!(rule_panic_path(&g).len(), 1);
    }

    #[test]
    fn float_eq_needs_float_evidence() {
        let f = prep("if a == b { }\nif x == 0.0 { }\nif (y as f64) != z { }\nif i <= 3.0 { }\n");
        let d = rule_float_eq(&f);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![2, 3]);
    }

    #[test]
    fn instant_timing_flags_wall_clock_calls() {
        let src = "let t0 = Instant::now();\n\
                   let wall = std::time::SystemTime::now();\n\
                   let fine = MyInstant::now();\n\
                   // audit:allow(instant-timing) — sanctioned example\n\
                   let ok = Instant::now();\n\
                   #[cfg(test)]\nmod tests { fn t() { let _ = Instant::now(); } }\n";
        let f = prep(src);
        let d = rule_instant_timing(&f);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1, 2]);
        assert!(d[0].message.contains("obscor_obs::span"));
    }

    #[test]
    fn key_pack_flags_adhoc_packing_only() {
        let src = "let k = (row as u64) << 32 | col as u64;\n\
                   let ok = u64::from(row) << 32 | u64::from(col);\n\
                   let wide = x as u64 * 2;\n\
                   let big = y as u64 << 320;\n\
                   // audit:allow(key-pack) — fixture\n\
                   let a = (r as u64) << 32;\n\
                   #[cfg(test)]\nmod tests { fn t() { let _ = (1u32 as u64) << 32; } }\n";
        let f = prep(src);
        let d = rule_key_pack(&f);
        assert_eq!(d.iter().map(|d| d.line).collect::<Vec<_>>(), vec![1]);
        assert!(d[0].message.contains("keypack::pack_key"));
    }

    #[test]
    fn key_pack_exempts_the_keypack_helper() {
        let f = SourceFile::from_source(
            PathBuf::from("keypack.rs"),
            "crates/hypersparse/src/keypack.rs".into(),
            "let k = (row as u64) << 32 | u64::from(col);\n".to_string(),
        );
        assert!(rule_key_pack(&f).is_empty());
    }

    #[test]
    fn constructors_are_found() {
        let src = "impl<V: Value> Csr<V> {\n\
                       pub fn new(n: usize) -> Self { todo() }\n\
                       pub fn rows(&self) -> usize { 0 }\n\
                       pub(crate) fn internal() -> Self { todo() }\n\
                       pub fn from_coo(c: Coo<V>) -> Csr<V> { todo() }\n\
                   }\n";
        let f = prep(src);
        let ctors = find_constructors(&f);
        let names: Vec<_> = ctors.iter().map(|c| c.fn_name.as_str()).collect();
        assert_eq!(names, vec!["new", "from_coo"]);
        assert!(ctors.iter().all(|c| c.type_name == "Csr"));
    }

    #[test]
    fn invariant_coverage_logic() {
        let lib = prep(
            "impl Csr {\n\
                 pub fn new() -> Self { x }\n\
                 pub fn check_invariants(&self) -> Result<(), String> { Ok(()) }\n\
             }\n\
             impl Naked {\n\
                 pub fn make() -> Self { y }\n\
             }\n",
        );
        let corpus_ok = "let c = Csr::new(); c.check_invariants();";
        let d = rule_invariant_coverage(std::slice::from_ref(&lib), corpus_ok);
        // Csr::new covered; Naked::make lacks check_invariants entirely.
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Naked"));

        let d2 = rule_invariant_coverage(std::slice::from_ref(&lib), "");
        assert_eq!(d2.len(), 2);
    }
}
