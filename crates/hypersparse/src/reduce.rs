//! Network quantities from traffic matrices (Table II of the paper).
//!
//! Every function documents the summation-notation formula it implements.
//! `A_t(i, j)` is the number of valid packets from source `i` to destination
//! `j` in window `t`; `| |_0` is the zero-norm that maps nonzeros to 1.
//!
//! All quantities are invariant under simultaneous row/column permutation
//! (anonymization); the workspace property tests check this for each one.

use crate::csr::Csr;
use crate::value::Value;
use crate::Index;
use rayon::prelude::*;

/// Valid packets `N_V = Σ_i Σ_j A_t(i, j)` (matrix notation `1' A_t 1`).
pub fn valid_packets<V: Value>(a: &Csr<V>) -> u64 {
    a.values().iter().map(|v| v.to_u64()).sum()
}

/// Unique links `Σ_i Σ_j |A_t(i, j)|_0` (`1' |A_t|_0 1`).
pub fn unique_links<V: Value>(a: &Csr<V>) -> u64 {
    a.nnz() as u64
}

/// Max link packets `max_ij A_t(i, j)` (`max(A_t)`).
pub fn max_link_packets<V: Value>(a: &Csr<V>) -> u64 {
    a.values().iter().map(|v| v.to_u64()).max().unwrap_or(0)
}

/// Unique sources `Σ_i |Σ_j A_t(i, j)|_0` (`|1' A_t 1|_0` row side).
pub fn unique_sources<V: Value>(a: &Csr<V>) -> u64 {
    a.n_rows() as u64
}

/// Packets from each source: `(i, Σ_j A_t(i, j))` per occupied row
/// (`A_t 1`). This is the *source packet degree* `d` whose distribution is
/// Fig 3 and whose log2 bins index Figs 4-8.
pub fn source_packets<V: Value>(a: &Csr<V>) -> Vec<(Index, u64)> {
    a.iter_rows()
        .map(|(r, _, vals)| (r, vals.iter().map(|v| v.to_u64()).sum()))
        .collect()
}

/// Parallel variant of [`source_packets`] for large windows.
pub fn source_packets_par<V: Value>(a: &Csr<V>) -> Vec<(Index, u64)> {
    let n = a.n_rows();
    (0..n)
        .into_par_iter()
        .map(|i| {
            let (_, vals) = a.row_at(i);
            (a.row_keys()[i], vals.iter().map(|v| v.to_u64()).sum())
        })
        .collect()
}

/// Row count at which [`source_packets_auto`] switches to the parallel
/// row-sum path.
pub const PAR_ROW_SUM_THRESHOLD: usize = 1 << 14;

/// [`source_packets`] with automatic serial/parallel selection: windows
/// with at least [`PAR_ROW_SUM_THRESHOLD`] occupied rows go through
/// [`source_packets_par`], smaller ones stay serial. Both paths emit one
/// entry per occupied row in ascending row-key order, so the choice is
/// invisible to callers.
pub fn source_packets_auto<V: Value>(a: &Csr<V>) -> Vec<(Index, u64)> {
    if a.n_rows() >= PAR_ROW_SUM_THRESHOLD {
        source_packets_par(a)
    } else {
        source_packets(a)
    }
}

/// Max source packets `max_i Σ_j A_t(i, j)` (`max(A_t 1)`).
pub fn max_source_packets<V: Value>(a: &Csr<V>) -> u64 {
    a.iter_rows()
        .map(|(_, _, vals)| vals.iter().map(|v| v.to_u64()).sum())
        .max()
        .unwrap_or(0)
}

/// Source fan-out from each source: `(i, Σ_j |A_t(i, j)|_0)` (`|A_t|_0 1`):
/// the number of distinct destinations each source touches.
pub fn source_fan_out<V: Value>(a: &Csr<V>) -> Vec<(Index, u64)> {
    a.iter_rows().map(|(r, cols, _)| (r, cols.len() as u64)).collect()
}

/// Max source fan-out `max_i Σ_j |A_t(i, j)|_0` (`max(|A_t|_0 1)`).
pub fn max_source_fan_out<V: Value>(a: &Csr<V>) -> u64 {
    a.iter_rows().map(|(_, cols, _)| cols.len() as u64).max().unwrap_or(0)
}

/// Unique destinations `Σ_j |Σ_i A_t(i, j)|_0` (`|1' A_t|_0 1` column side).
pub fn unique_destinations<V: Value>(a: &Csr<V>) -> u64 {
    distinct_cols(a) as u64
}

/// Packets to each destination: `(j, Σ_i A_t(i, j))` (`1' A_t`).
pub fn destination_packets<V: Value>(a: &Csr<V>) -> Vec<(Index, u64)> {
    col_reduce(a, |_cols, v| v.to_u64())
}

/// Max destination packets `max_j Σ_i A_t(i, j)` (`max(1' A_t)`).
pub fn max_destination_packets<V: Value>(a: &Csr<V>) -> u64 {
    destination_packets(a).into_iter().map(|(_, v)| v).max().unwrap_or(0)
}

/// Destination fan-in to each destination: `(j, Σ_i |A_t(i, j)|_0)`
/// (`1' |A_t|_0`): the number of distinct sources hitting each destination.
pub fn destination_fan_in<V: Value>(a: &Csr<V>) -> Vec<(Index, u64)> {
    col_reduce(a, |_cols, _v| 1u64)
}

/// Max destination fan-in `max_j Σ_i |A_t(i, j)|_0` (`max(1' |A_t|_0)`).
pub fn max_destination_fan_in<V: Value>(a: &Csr<V>) -> u64 {
    destination_fan_in(a).into_iter().map(|(_, v)| v).max().unwrap_or(0)
}

/// Column-side reduction without materializing the transpose: gather
/// `(col, f(entry))` pairs, sort by column, and sum runs.
fn col_reduce<V: Value, F: Fn(Index, V) -> u64>(a: &Csr<V>, f: F) -> Vec<(Index, u64)> {
    let mut pairs: Vec<(Index, u64)> =
        a.iter().map(|(_, c, v)| (c, f(c, v))).collect();
    pairs.sort_unstable_by_key(|&(c, _)| c);
    let mut out: Vec<(Index, u64)> = Vec::new();
    for (c, v) in pairs {
        match out.last_mut() {
            Some((lc, acc)) if *lc == c => *acc += v,
            _ => out.push((c, v)),
        }
    }
    out
}

fn distinct_cols<V: Value>(a: &Csr<V>) -> usize {
    let mut cols: Vec<Index> = a.col_indices().to_vec();
    cols.sort_unstable();
    cols.dedup();
    cols.len()
}

/// All Table II aggregates in one pass-friendly struct, in the order the
/// paper lists them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetworkQuantities {
    /// Total packets in the window, `Σ_{i,j} A(i,j)`.
    pub valid_packets: u64,
    /// Occupied (source, destination) pairs, `Σ |A|_0`.
    pub unique_links: u64,
    /// Heaviest single link, `max A(i,j)`.
    pub max_link_packets: u64,
    /// Occupied rows — distinct sending addresses.
    pub unique_sources: u64,
    /// Heaviest source row sum, `max_i Σ_j A(i,j)`.
    pub max_source_packets: u64,
    /// Widest source, `max_i Σ_j |A(i,j)|_0`.
    pub max_source_fan_out: u64,
    /// Occupied columns — distinct receiving addresses.
    pub unique_destinations: u64,
    /// Heaviest destination column sum, `max_j Σ_i A(i,j)`.
    pub max_destination_packets: u64,
    /// Widest destination, `max_j Σ_i |A(i,j)|_0`.
    pub max_destination_fan_in: u64,
}

impl NetworkQuantities {
    /// Compute every aggregate quantity of Table II from one matrix.
    pub fn compute<V: Value>(a: &Csr<V>) -> Self {
        Self {
            valid_packets: valid_packets(a),
            unique_links: unique_links(a),
            max_link_packets: max_link_packets(a),
            unique_sources: unique_sources(a),
            max_source_packets: max_source_packets(a),
            max_source_fan_out: max_source_fan_out(a),
            unique_destinations: unique_destinations(a),
            max_destination_packets: max_destination_packets(a),
            max_destination_fan_in: max_destination_fan_in(a),
        }
    }

    /// Internal consistency check: the Table II aggregates obey a fixed set
    /// of order relations (a maximum over a subset cannot exceed the total,
    /// a per-link count cannot exceed its endpoint's count, a fan cannot
    /// exceed the opposite axis size). Used by tests and the pipeline's
    /// `strict-invariants` stage checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        let checks: [(&str, bool); 8] = [
            ("unique_sources <= unique_links", self.unique_sources <= self.unique_links),
            ("unique_destinations <= unique_links", self.unique_destinations <= self.unique_links),
            ("max_link_packets <= max_source_packets", self.max_link_packets <= self.max_source_packets),
            ("max_link_packets <= max_destination_packets", self.max_link_packets <= self.max_destination_packets),
            ("max_source_packets <= valid_packets", self.max_source_packets <= self.valid_packets),
            ("max_destination_packets <= valid_packets", self.max_destination_packets <= self.valid_packets),
            ("max_source_fan_out <= unique_destinations", self.max_source_fan_out <= self.unique_destinations),
            ("max_destination_fan_in <= unique_sources", self.max_destination_fan_in <= self.unique_sources),
        ];
        for (label, ok) in checks {
            if !ok {
                return Err(format!("Table II relation violated: {label}"));
            }
        }
        Ok(())
    }

    /// Render as aligned `name value` rows (the shape of Table II's left
    /// column with measured values).
    pub fn render(&self) -> String {
        let rows = [
            ("Valid packets N_V", self.valid_packets),
            ("Unique links", self.unique_links),
            ("Max link packets (d_max)", self.max_link_packets),
            ("Unique sources", self.unique_sources),
            ("Max source packets (d_max)", self.max_source_packets),
            ("Max source fan-out (d_max)", self.max_source_fan_out),
            ("Unique destinations", self.unique_destinations),
            ("Max destination packets (d_max)", self.max_destination_packets),
            ("Max destination fan-in (d_max)", self.max_destination_fan_in),
        ];
        let mut s = String::new();
        for (name, v) in rows {
            s.push_str(&format!("{name:<34} {v}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coo;

    /// The worked example from the paper: 3 packets 1.1.1.1 -> 2.2.2.2.
    fn paper_example() -> Csr<u64> {
        let mut coo = Coo::new();
        coo.push(16843009, 33686018, 3);
        coo.into_csr()
    }

    fn sample() -> Csr<u64> {
        // Two sources; source 1 hits 3 destinations, source 2 hits 1;
        // destination 7 is hit by both sources.
        Coo::from_triples(vec![
            (1u32, 7u32, 5u64),
            (1, 8, 1),
            (1, 9, 2),
            (2, 7, 4),
        ])
        .into_csr()
    }

    #[test]
    fn paper_worked_example() {
        let a = paper_example();
        assert_eq!(valid_packets(&a), 3);
        assert_eq!(unique_links(&a), 1);
        assert_eq!(unique_sources(&a), 1);
        assert_eq!(unique_destinations(&a), 1);
        assert_eq!(max_link_packets(&a), 3);
    }

    #[test]
    fn aggregate_quantities() {
        let a = sample();
        let q = NetworkQuantities::compute(&a);
        assert_eq!(q.valid_packets, 12);
        assert_eq!(q.unique_links, 4);
        assert_eq!(q.max_link_packets, 5);
        assert_eq!(q.unique_sources, 2);
        assert_eq!(q.max_source_packets, 8); // source 1: 5+1+2
        assert_eq!(q.max_source_fan_out, 3);
        assert_eq!(q.unique_destinations, 3);
        assert_eq!(q.max_destination_packets, 9); // dest 7: 5+4
        assert_eq!(q.max_destination_fan_in, 2);
    }

    #[test]
    fn per_entity_vectors() {
        let a = sample();
        assert_eq!(source_packets(&a), vec![(1, 8), (2, 4)]);
        assert_eq!(source_fan_out(&a), vec![(1, 3), (2, 1)]);
        assert_eq!(destination_packets(&a), vec![(7, 9), (8, 1), (9, 2)]);
        assert_eq!(destination_fan_in(&a), vec![(7, 2), (8, 1), (9, 1)]);
    }

    #[test]
    fn parallel_source_packets_agrees() {
        let a = sample();
        let mut par = source_packets_par(&a);
        par.sort_unstable();
        assert_eq!(par, source_packets(&a));
    }

    #[test]
    fn auto_dispatch_matches_serial_on_both_sides_of_threshold() {
        // Below the threshold: the serial arm.
        let small = sample();
        assert_eq!(source_packets_auto(&small), source_packets(&small));
        // At/above the threshold: the parallel arm, same order and values.
        let n = PAR_ROW_SUM_THRESHOLD as u32;
        let triples: Vec<(u32, u32, u64)> =
            (0..n).map(|i| (i, i % 7, u64::from(i % 5 + 1))).collect();
        let big = Coo::from_triples(triples).into_csr();
        assert!(big.n_rows() >= PAR_ROW_SUM_THRESHOLD);
        assert_eq!(source_packets_auto(&big), source_packets(&big));
    }

    #[test]
    fn column_side_matches_transpose_row_side() {
        let a = sample();
        let t = a.transpose();
        let mut via_transpose = source_packets(&t);
        via_transpose.sort_unstable();
        assert_eq!(via_transpose, destination_packets(&a));
        let mut fanin_t = source_fan_out(&t);
        fanin_t.sort_unstable();
        assert_eq!(fanin_t, destination_fan_in(&a));
    }

    #[test]
    fn empty_matrix_quantities_are_zero() {
        let q = NetworkQuantities::compute(&Csr::<u64>::empty());
        assert_eq!(q, NetworkQuantities::default());
    }

    #[test]
    fn source_packet_sum_equals_valid_packets() {
        let a = sample();
        let total: u64 = source_packets(&a).into_iter().map(|(_, d)| d).sum();
        assert_eq!(total, valid_packets(&a));
    }

    #[test]
    fn render_lists_all_nine_quantities() {
        let s = NetworkQuantities::compute(&sample()).render();
        assert_eq!(s.lines().count(), 9);
        assert!(s.contains("Valid packets N_V"));
        assert!(s.contains("Max destination fan-in"));
    }
}
