//! Differential properties: `BitSet ≡ NumKeySet ≡ string-key oracle`.
//!
//! Every public operation of the compressed bitmap substrate is compared
//! against the sorted-`Vec<u32>` [`NumKeySet`] and, through
//! [`NumKeySet::to_key_set`], the string-keyed [`KeySet`] oracle — over
//! random density regimes and the adversarial shapes that sit on the
//! container representation boundaries (empty, singleton, dense runs,
//! full chunks, the array→bitmap promotion edge). Fractions must match
//! *bit for bit*, not approximately: the fast path divides the same two
//! integers as the oracles.
//!
//! Replay seeds live in `proptest-regressions/bitset_differential.txt`.

use obscor_assoc::{BitSet, KeySet, MonthMatrix, NumKeySet};
use proptest::prelude::*;
use rand::{rngs::StdRng, RngExt, SeedableRng};

/// One random set in a density regime chosen by `shape`, as sorted
/// unique keys. The regimes deliberately include every container form
/// and both sides of the promotion threshold (`ARRAY_MAX` = 4096).
fn gen_keys(rng: &mut StdRng, shape: u32) -> Vec<u32> {
    let mut keys: Vec<u32> = match shape % 8 {
        // Empty and singleton sets.
        0 => Vec::new(),
        1 => vec![rng.random_range(0u32..1 << 24)],
        // One dense run, possibly crossing a chunk boundary.
        2 => {
            let start = rng.random_range(0u32..100_000);
            let len = rng.random_range(1u32..30_000);
            (start..start + len).collect()
        }
        // A full 2^16 chunk.
        3 => {
            let base = rng.random_range(0u32..4) << 16;
            (base..base + 65_536).collect()
        }
        // The promotion boundary: 4095..=4097 distinct keys in one chunk.
        4 => {
            let target = 4095 + rng.random_range(0u32..3);
            let mut v: Vec<u32> = (0..target * 2).step_by(2).collect();
            v.truncate(target as usize);
            v
        }
        // Sparse scatter across many chunks.
        5 => (0..rng.random_range(1u32..2000))
            .map(|_| rng.random_range(0u32..1 << 28))
            .collect(),
        // Dense scatter confined to one chunk (bitmap container).
        6 => {
            let base = rng.random_range(0u32..8) << 16;
            (0..rng.random_range(4200u32..20_000))
                .map(|_| base + rng.random_range(0u32..65_536))
                .collect()
        }
        // Mixture: run + scatter, so chunks of different kinds coexist.
        _ => {
            let mut v: Vec<u32> = (200_000..210_000).collect();
            v.extend((0..500).map(|_| rng.random_range(0u32..1 << 26)));
            v
        }
    };
    keys.sort_unstable();
    keys.dedup();
    keys
}

/// All three representations of one key list.
fn triplet(keys: &[u32]) -> (BitSet, NumKeySet, KeySet) {
    let num = NumKeySet::from_iter(keys.iter().copied());
    let bits = BitSet::from_num_key_set(&num);
    let strs = num.to_key_set();
    (bits, num, strs)
}

proptest! {
    /// Overlap count, overlap fraction (bit-identical `f64`), intersect,
    /// and union agree with both oracles across random density pairings.
    #[test]
    fn random_density_sets_agree_with_oracles(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape_a = rng.random_range(0u32..8);
        let shape_b = rng.random_range(0u32..8);
        let (ba, na, sa) = triplet(&gen_keys(&mut rng, shape_a));
        let (bb, nb, sb) = triplet(&gen_keys(&mut rng, shape_b));
        ba.check_invariants().unwrap();
        bb.check_invariants().unwrap();
        prop_assert_eq!(ba.len(), na.len());
        prop_assert_eq!(ba.overlap_count(&bb), na.overlap_count(&nb));
        prop_assert_eq!(ba.overlap_count(&bb), sa.intersect(&sb).len());
        // Fractions bit-identical through both oracles.
        prop_assert_eq!(ba.overlap_fraction(&bb), na.overlap_fraction(&nb));
        prop_assert_eq!(ba.overlap_fraction(&bb), sa.overlap_fraction(&sb));
        // Materialized set algebra.
        let isect = ba.intersect(&bb);
        isect.check_invariants().unwrap();
        prop_assert_eq!(isect.to_num_key_set(), na.intersect(&nb));
        prop_assert_eq!(isect.to_num_key_set().to_key_set(), sa.intersect(&sb));
        let un = ba.union(&bb);
        un.check_invariants().unwrap();
        prop_assert_eq!(un.to_num_key_set().to_key_set(), sa.union(&sb));
        // Inclusion-exclusion ties all four numbers together.
        prop_assert_eq!(un.len() + isect.len(), ba.len() + bb.len());
    }

    /// Round trip through the sorted-vector and string domains is lossless.
    #[test]
    fn round_trips_are_lossless(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = rng.random_range(0u32..8);
        let (bits, num, strs) = triplet(&gen_keys(&mut rng, shape));
        prop_assert_eq!(bits.to_num_key_set(), num.clone());
        prop_assert_eq!(BitSet::from_num_key_set(&bits.to_num_key_set()).to_num_key_set(), num);
        prop_assert_eq!(bits.to_num_key_set().to_key_set(), strs);
        // from_iter over shuffled duplicates builds the same set.
        let mut noisy: Vec<u32> = bits.iter().collect();
        noisy.extend(bits.iter().take(10));
        let rebuilt = BitSet::from_iter(noisy);
        rebuilt.check_invariants().unwrap();
        prop_assert_eq!(rebuilt.to_num_key_set(), bits.to_num_key_set());
    }

    /// Random insert/remove streams match a `BTreeSet` model, with
    /// invariants (including promotion/demotion hysteresis bounds)
    /// holding at every checkpoint.
    #[test]
    fn mutation_stream_matches_model(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bits = BitSet::new();
        let mut model = std::collections::BTreeSet::new();
        // Concentrate keys in two chunks so containers actually cross the
        // promotion/demotion thresholds during the stream.
        for step in 0..rng.random_range(500u32..6000) {
            let key = (rng.random_range(0u32..2) << 16) + rng.random_range(0u32..9000);
            if rng.random_range(0u32..3) == 0 {
                prop_assert_eq!(bits.remove(key), model.remove(&key));
            } else {
                prop_assert_eq!(bits.insert(key), model.insert(key));
            }
            if step % 512 == 0 {
                bits.check_invariants().unwrap();
            }
        }
        bits.check_invariants().unwrap();
        prop_assert_eq!(bits.len(), model.len());
        let keys: Vec<u32> = bits.iter().collect();
        let expect: Vec<u32> = model.iter().copied().collect();
        prop_assert_eq!(keys, expect);
        // contains agrees on hits and misses.
        for _ in 0..100 {
            let probe = (rng.random_range(0u32..2) << 16) + rng.random_range(0u32..9000);
            prop_assert_eq!(bits.contains(probe), model.contains(&probe));
        }
        // optimize() may change physical form but never contents.
        bits.optimize();
        bits.check_invariants().unwrap();
        prop_assert_eq!(bits.len(), model.len());
    }

    /// `rank`/`select` agree with positional indexing of the sorted vector.
    #[test]
    fn rank_select_match_sorted_vector(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = rng.random_range(0u32..8);
        let keys = gen_keys(&mut rng, shape);
        let (bits, _, _) = triplet(&keys);
        // Every 37th member plus random probes (members or not).
        for (i, &k) in keys.iter().enumerate().step_by(37) {
            prop_assert_eq!(bits.rank(k), i);
            prop_assert_eq!(bits.select(i), Some(k));
        }
        prop_assert_eq!(bits.select(keys.len()), None);
        for _ in 0..50 {
            let probe = rng.random_range(0u32..1 << 28);
            prop_assert_eq!(bits.rank(probe), keys.partition_point(|&k| k < probe));
        }
    }

    /// The month-matrix one-sweep overlap equals the pairwise overlaps
    /// for every month, across random month populations and probes.
    #[test]
    fn month_matrix_sweep_matches_pairwise(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_months = rng.random_range(1u32..16) as usize;
        let months: Vec<NumKeySet> = (0..n_months)
            .map(|_| {
                let shape = rng.random_range(0u32..8);
                NumKeySet::from_iter(gen_keys(&mut rng, shape))
            })
            .collect();
        let mm = MonthMatrix::from_months(&months);
        mm.check_invariants().unwrap();
        prop_assert_eq!(mm.n_months(), n_months);
        for (m, month) in months.iter().enumerate() {
            prop_assert_eq!(mm.month_len(m), month.len());
        }
        for _ in 0..3 {
            let shape = rng.random_range(0u32..8);
            let probe_keys = gen_keys(&mut rng, shape);
            let probe_num = NumKeySet::from_iter(probe_keys.iter().copied());
            let probe = BitSet::from_num_key_set(&probe_num);
            let counts = mm.overlap_counts(&probe);
            for (m, month) in months.iter().enumerate() {
                prop_assert_eq!(counts[m], probe_num.overlap_count(month));
            }
        }
    }
}
