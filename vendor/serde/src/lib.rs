//! Offline stand-in for `serde`.
//!
//! Provides marker [`Serialize`]/[`Deserialize`] traits and re-exports the
//! inert derives from the vendored `serde_derive` stub. The workspace only
//! *derives* these traits (for upstream API parity); all real persistence
//! goes through the hand-rolled codecs in `obscor-hypersparse::serialize`
//! and `obscor-assoc::io`, so no serializer implementation is needed here.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
