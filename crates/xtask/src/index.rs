//! Workspace call graph and reachability analyses for the audit engine.
//!
//! Builds one [`CallGraph`] over every scanned library file: a node per
//! `fn` item, a call-site list per node (every identifier directly
//! followed by `(` inside the body, macro names excluded because their
//! next token is `!`), and name-resolved edges. Resolution is
//! qualifier-aware but typeless ([`CallQual`]):
//!
//! * bare `name(...)` and module-qualified `module::name(...)` calls edge
//!   to *every* same-named definition (over-approximate);
//! * `Type::name(...)` and `Self::name(...)` calls edge only to `name`
//!   definitions inside an `impl Type` block — so `AtomicBool::new(...)`
//!   never edges to a workspace `new`;
//! * `self.name(...)` resolves within the caller's own impl type;
//! * `receiver.name(...)` with any other receiver contributes *no* edge:
//!   without types, dotted method names are dominated by std collisions
//!   (`.map`, `.iter`, `.join`), and a wrong edge on those poisons every
//!   reachability closure. Blocking/panic *operations* written directly
//!   in a body are still classified by token shape, so this trades a
//!   bounded blind spot (cross-object method calls) for usable precision;
//!   DESIGN.md §14 spells out the tradeoff.
//!
//! On top of the graph, [`Analyses`] memoizes reverse-BFS reachability
//! closures ([`Reach`]) to the sink sets the interprocedural rules need:
//! the `obscor_obs::json` codec, the hypersparse archive codec
//! (`serialize.rs`), blocking operations (`.lock()` / `.read()` /
//! `.write()` / `.recv()` / `.join()`), panic sites, and per-name lock
//! acquisitions. Each closure stores a next-hop table so rules can
//! report the *full call chain* from a finding to its sink.
//!
//! The one-hop [`SymbolIndex`] that `map-iter-order` consumes is derived
//! from the same graph ([`SymbolIndex::from_graph`]) and keeps its
//! historical semantics: codec functions plus their *direct* callers
//! only.

use std::cell::OnceCell;
use std::collections::{BTreeMap, HashMap, HashSet};

use crate::lex::TokKind;
use crate::parse::ItemKind;
use crate::scan::SourceFile;

/// One function definition site.
#[derive(Debug, Clone)]
pub struct DefSite {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
}

/// The cross-file symbol index (one-hop view of the call graph).
#[derive(Debug, Default)]
pub struct SymbolIndex {
    /// Function name -> definition sites across all scanned files.
    pub defs: HashMap<String, Vec<DefSite>>,
    /// Function names that reach the `obscor_obs::json` codec in at most
    /// one call hop: codec functions themselves (defined in
    /// `obs/src/json.rs` or referencing the `obscor_obs::json` /
    /// `json::<fn>` path) plus their direct callers.
    pub json_reaching: HashSet<String>,
}

impl SymbolIndex {
    /// Whether `name` is a known function definition.
    pub fn is_defined(&self, name: &str) -> bool {
        self.defs.contains_key(name)
    }

    /// Derive the one-hop index from a full call graph. Level 0 is the
    /// set of json-codec node *names*; level 1 adds every node with a
    /// direct edge to a codec node. Deeper callers are deliberately NOT
    /// included — `map-iter-order` keeps its original one-hop semantics
    /// (full-depth taint is `nondet-reach`'s job).
    pub fn from_graph(graph: &CallGraph) -> SymbolIndex {
        let mut defs: HashMap<String, Vec<DefSite>> = HashMap::new();
        let mut json_reaching = HashSet::new();
        for node in &graph.nodes {
            defs.entry(node.name.clone()).or_default().push(DefSite {
                file: node.file_rel.clone(),
                line: node.line,
            });
            if node.json_codec {
                json_reaching.insert(node.name.clone());
            }
        }
        for (n, node) in graph.nodes.iter().enumerate() {
            if graph.edges[n].iter().any(|&t| graph.nodes[t].json_codec) {
                json_reaching.insert(node.name.clone());
            }
        }
        SymbolIndex { defs, json_reaching }
    }
}

/// Build the one-hop index over every scanned library file.
pub fn build_index(files: &[&SourceFile]) -> SymbolIndex {
    SymbolIndex::from_graph(&build_graph(files))
}

// ---------------------------------------------------------------------------
// Call graph
// ---------------------------------------------------------------------------

/// How a call site is qualified at the call position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallQual {
    /// Bare `name(...)`.
    Free,
    /// `Qualifier::name(...)` — the identifier right before the `::`.
    Path(String),
    /// `self.name(...)`.
    SelfMethod,
    /// `receiver.name(...)` with a non-`self` receiver expression.
    Method,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee identifier as written (`helper`, `restore_leaf`, ...).
    pub callee: String,
    /// How the call is qualified (drives edge resolution).
    pub qual: CallQual,
    /// Token index of the callee identifier.
    pub tok: usize,
    /// 1-based line.
    pub line: usize,
}

/// A classified operation site (panic or blocking) inside a body.
#[derive(Debug, Clone)]
pub struct OpSite {
    /// Human-readable label, e.g. `` `.lock()` `` or `` `unwrap()` ``.
    pub what: &'static str,
    /// Token index of the operation's identifier.
    pub tok: usize,
    /// 1-based line.
    pub line: usize,
}

/// A named lock acquisition (`guard.lock()` / `.read()` / `.write()`).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// The receiver identifier naming the lock (`counters` in
    /// `self.counters.lock()`); only named receivers are recorded.
    pub lock: String,
    /// The acquiring method (`lock`, `read`, or `write`).
    pub op: &'static str,
    /// Token index of the receiver identifier.
    pub tok: usize,
    /// 1-based line.
    pub line: usize,
}

/// One function node of the workspace call graph.
#[derive(Debug)]
pub struct FnNode {
    /// Function name.
    pub name: String,
    /// Index of the defining file in the scanned slice.
    pub file: usize,
    /// Index of the `fn` item in that file's item tree.
    pub item: usize,
    /// Workspace-relative path of the defining file.
    pub file_rel: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Type name of the enclosing `impl` block (`Registry` for a method
    /// of `impl Registry`); empty for free functions.
    pub impl_type: String,
    /// True for functions in `#[cfg(test)]` regions.
    pub is_test: bool,
    /// Every call site in the body, in token order.
    pub calls: Vec<CallSite>,
    /// Part of the `obscor_obs::json` codec (defined in `obs/src/json.rs`
    /// or referencing the codec path directly).
    pub json_codec: bool,
    /// Part of the hypersparse archive codec (`serialize.rs` or a
    /// qualified `serialize::` / `obscor_hypersparse::serialize` call).
    pub archive_codec: bool,
    /// Direct blocking operations in the body.
    pub blocking: Vec<OpSite>,
    /// Direct panic-path sites in the body.
    pub panics: Vec<OpSite>,
    /// Named lock acquisitions in the body, in token order.
    pub locks: Vec<LockSite>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All function nodes, in (file, item) order.
    pub nodes: Vec<FnNode>,
    /// Function name -> node ids (a name can have many definitions).
    pub by_name: HashMap<String, Vec<usize>>,
    /// Resolved forward edges per node (sorted, deduped).
    pub edges: Vec<Vec<usize>>,
    /// Reverse edges per node (sorted, deduped).
    redges: Vec<Vec<usize>>,
    /// Per file: token index -> innermost enclosing fn node.
    owners: Vec<Vec<Option<usize>>>,
    /// (file, item index) -> node id.
    item_nodes: HashMap<(usize, usize), usize>,
}

/// Keywords that read as `ident (` but are never call sites.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "loop", "return", "in", "as", "let", "else", "fn", "move",
    "ref", "mut", "dyn", "impl", "where", "use", "pub", "crate", "super", "mod", "const",
    "static", "struct", "enum", "union", "trait", "type", "break", "continue", "unsafe",
    "await", "yield", "self", "Self",
];

/// Build the call graph over every scanned library file. File order is
/// the caller's order; node ids are stable for a given input order.
pub fn build_graph(files: &[&SourceFile]) -> CallGraph {
    let mut g = CallGraph::default();

    // Pass 1: nodes + per-file owner maps (innermost fn per token).
    for (fid, file) in files.iter().enumerate() {
        let mut owner: Vec<Option<usize>> = vec![None; file.toks.len()];
        let in_json_codec = file.rel.ends_with("obs/src/json.rs");
        let in_archive_codec = file.rel.ends_with("hypersparse/src/serialize.rs");
        for (iid, item) in file.items.iter().enumerate() {
            if !matches!(item.kind, ItemKind::Fn) {
                continue;
            }
            let id = g.nodes.len();
            let body = item.body;
            if let Some((open, close)) = body {
                // Items are parsed parents-first, so later (nested) fns
                // overwrite their subrange: innermost wins.
                for slot in owner.iter_mut().take(close + 1).skip(open) {
                    *slot = Some(id);
                }
            }
            let json_codec = !item.is_test
                && (in_json_codec
                    || body.is_some_and(|(o, c)| body_touches_codec(file, o + 1..c)));
            let archive_codec = !item.is_test
                && (in_archive_codec
                    || body.is_some_and(|(o, c)| body_touches_archive(file, o + 1..c)));
            // Enclosing impl type, if any, via the parent chain.
            let mut impl_type = String::new();
            let mut up = item.parent;
            while let Some(p) = up {
                if let ItemKind::Impl { type_name, .. } = &file.items[p].kind {
                    impl_type = type_name.clone();
                    break;
                }
                up = file.items[p].parent;
            }
            g.nodes.push(FnNode {
                name: item.name.clone(),
                file: fid,
                item: iid,
                file_rel: file.rel.clone(),
                line: file.tok_line(item.kw_tok),
                impl_type,
                is_test: item.is_test,
                calls: Vec::new(),
                json_codec,
                archive_codec,
                blocking: Vec::new(),
                panics: Vec::new(),
                locks: Vec::new(),
            });
            g.item_nodes.insert((fid, iid), id);
            g.by_name.entry(item.name.clone()).or_default().push(id);
        }
        g.owners.push(owner);
    }

    // Pass 2: call sites and classified operation sites, attributed to
    // the innermost enclosing fn.
    for (fid, file) in files.iter().enumerate() {
        for i in 0..file.toks.len() {
            let Some(node) = g.owners[fid][i] else { continue };
            if file.toks[i].kind != TokKind::Ident {
                continue;
            }
            let line = file.tok_line(i);
            if let Some(what) = panic_at(file, i) {
                g.nodes[node].panics.push(OpSite { what, tok: i, line });
            }
            if let Some(what) = blocking_at(file, i) {
                g.nodes[node].blocking.push(OpSite { what, tok: i, line });
                if let Some((lock, op)) = lock_acquisition_at(file, i) {
                    g.nodes[node].locks.push(LockSite { lock, op, tok: i, line });
                }
            }
            if let Some(qual) = call_site_at(file, i) {
                g.nodes[node].calls.push(CallSite {
                    callee: file.tok_text(i).to_string(),
                    qual,
                    tok: i,
                    line,
                });
            }
        }
    }

    // Pass 3: resolve edges per call site (qualifier-aware).
    g.edges = vec![Vec::new(); g.nodes.len()];
    g.redges = vec![Vec::new(); g.nodes.len()];
    for n in 0..g.nodes.len() {
        let mut targets: Vec<usize> = g.nodes[n]
            .calls
            .iter()
            .flat_map(|c| g.resolve_call(n, c))
            .collect();
        targets.sort_unstable();
        targets.dedup();
        g.edges[n] = targets;
    }
    for n in 0..g.nodes.len() {
        for &t in &g.edges[n] {
            g.redges[t].push(n);
        }
    }
    g
}

/// Classify token `i` as a call site (identifier directly followed by
/// `(`, excluding definitions, keywords, and macro names), returning how
/// the call is qualified.
fn call_site_at(file: &SourceFile, i: usize) -> Option<CallQual> {
    if i + 1 >= file.toks.len()
        || file.toks[i + 1].kind != TokKind::Open
        || file.tok_text(i + 1) != "("
    {
        return None;
    }
    let name = file.tok_text(i);
    if CALL_KEYWORDS.contains(&name) {
        return None;
    }
    if i == 0 {
        return Some(CallQual::Free);
    }
    match file.tok_text(i - 1) {
        // `fn name(` is a definition, not a call.
        "fn" => None,
        "." => Some(if i >= 2 && file.tok_text(i - 2) == "self" {
            CallQual::SelfMethod
        } else {
            CallQual::Method
        }),
        "::" if i >= 2 && file.toks[i - 2].kind == TokKind::Ident => {
            Some(CallQual::Path(file.tok_text(i - 2).to_string()))
        }
        _ => Some(CallQual::Free),
    }
}

/// Panic-path site at token `i` (same shapes as the `panic-path` rule).
pub(crate) fn panic_at(file: &SourceFile, i: usize) -> Option<&'static str> {
    let name = file.tok_text(i);
    match name {
        "unwrap"
            if i > 0
                && file.tok_text(i - 1) == "."
                && i + 2 < file.toks.len()
                && file.tok_text(i + 1) == "("
                && file.delims[i + 1] == i + 2 =>
        {
            Some("`unwrap()`")
        }
        "expect"
            if i > 0
                && file.tok_text(i - 1) == "."
                && i + 1 < file.toks.len()
                && file.tok_text(i + 1) == "(" =>
        {
            Some("`expect(...)`")
        }
        "panic" | "unreachable" | "todo" | "unimplemented"
            if i + 1 < file.toks.len() && file.tok_text(i + 1) == "!" =>
        {
            Some(match name {
                "panic" => "`panic!`",
                "unreachable" => "`unreachable!`",
                "todo" => "`todo!`",
                _ => "`unimplemented!`",
            })
        }
        _ => None,
    }
}

/// Blocking operation at token `i`: an empty-argument `.lock()` /
/// `.read()` / `.write()` / `.recv()` / `.join()` method call, or
/// `.recv_timeout(...)`. The empty-argument requirement is what keeps
/// `io::Read::read(buf)`, `Path::join(seg)`, and `slice.join(sep)` out:
/// the blocking std/parking_lot signatures all take no arguments.
pub(crate) fn blocking_at(file: &SourceFile, i: usize) -> Option<&'static str> {
    if i == 0 || file.tok_text(i - 1) != "." {
        return None;
    }
    let name = file.tok_text(i);
    let empty_args = i + 2 < file.toks.len()
        && file.tok_text(i + 1) == "("
        && file.delims[i + 1] == i + 2;
    match name {
        "lock" if empty_args => Some("`.lock()`"),
        "read" if empty_args => Some("`.read()`"),
        "write" if empty_args => Some("`.write()`"),
        "recv" if empty_args => Some("`.recv()`"),
        "join" if empty_args => Some("`.join()`"),
        "recv_timeout" if i + 1 < file.toks.len() && file.tok_text(i + 1) == "(" => {
            Some("`.recv_timeout(...)`")
        }
        _ => None,
    }
}

/// Lock acquisition with a *named* receiver at token `i`: the identifier
/// right before the `.` names the lock (`counters` in
/// `self.counters.lock()`). Unnamed receivers (call or index results)
/// are skipped — the lock-order rule only folds named locks.
fn lock_acquisition_at(file: &SourceFile, i: usize) -> Option<(String, &'static str)> {
    let op = match file.tok_text(i) {
        "lock" => "lock",
        "read" => "read",
        "write" => "write",
        _ => return None,
    };
    if i < 2 || file.tok_text(i - 1) != "." {
        return None;
    }
    let recv = i - 2;
    if file.toks[recv].kind != TokKind::Ident {
        return None;
    }
    let name = file.tok_text(recv);
    if name == "self" {
        return None;
    }
    Some((name.to_string(), op))
}

/// Does the body reference the codec path — `obscor_obs :: json` or a
/// qualified `json :: <fn>` call?
fn body_touches_codec(file: &SourceFile, body: std::ops::Range<usize>) -> bool {
    body_touches_path(file, body, "obscor_obs", "json")
}

/// Does the body reference the archive codec path —
/// `obscor_hypersparse :: serialize` or a qualified `serialize :: <fn>`?
fn body_touches_archive(file: &SourceFile, body: std::ops::Range<usize>) -> bool {
    body_touches_path(file, body, "obscor_hypersparse", "serialize")
}

/// Shared shape of the two codec-path probes: `<crate> :: <module>`
/// anywhere, or `<module> :: <ident>`.
fn body_touches_path(
    file: &SourceFile,
    body: std::ops::Range<usize>,
    krate: &str,
    module: &str,
) -> bool {
    for i in body.clone() {
        if file.toks[i].kind != TokKind::Ident {
            continue;
        }
        let t = file.tok_text(i);
        if t == krate
            && i + 2 < body.end
            && file.tok_text(i + 1) == "::"
            && file.tok_text(i + 2) == module
        {
            return true;
        }
        if t == module
            && i + 2 < body.end
            && file.tok_text(i + 1) == "::"
            && file.toks[i + 2].kind == TokKind::Ident
        {
            return true;
        }
    }
    false
}

impl CallGraph {
    /// The node whose body contains token `tok` of file `file` (innermost
    /// enclosing fn), if any.
    pub fn fn_at(&self, file: usize, tok: usize) -> Option<usize> {
        self.owners.get(file).and_then(|o| o.get(tok).copied().flatten())
    }

    /// The node for item `item` of file `file`, if it is a `fn`.
    pub fn node_of(&self, file: usize, item: usize) -> Option<usize> {
        self.item_nodes.get(&(file, item)).copied()
    }

    /// Callers of node `n` (reverse edges).
    pub fn callers(&self, n: usize) -> &[usize] {
        &self.redges[n]
    }

    /// Resolve one call site of node `caller` to its candidate target
    /// nodes, per the qualifier rules in the module docs. Non-`self`
    /// method receivers resolve to nothing; `Type::`/`Self::`/`self.`
    /// calls resolve within the matching impl type only.
    pub fn resolve_call(&self, caller: usize, c: &CallSite) -> Vec<usize> {
        let Some(cands) = self.by_name.get(c.callee.as_str()) else {
            return Vec::new();
        };
        let caller_ty = &self.nodes[caller].impl_type;
        let within = |ty: &str| -> Vec<usize> {
            cands.iter().copied().filter(|&t| self.nodes[t].impl_type == ty).collect()
        };
        match &c.qual {
            CallQual::Method => Vec::new(),
            CallQual::Free => cands.clone(),
            CallQual::SelfMethod => within(caller_ty),
            CallQual::Path(q) if q == "Self" => within(caller_ty),
            CallQual::Path(q) => {
                if q.chars().next().is_some_and(|ch| ch.is_ascii_uppercase()) {
                    // A type-qualified call: only that type's methods —
                    // `AtomicBool::new(...)` must not edge to workspace
                    // `new`s. No workspace impl for the type → no edge.
                    within(q)
                } else {
                    // Module-qualified: modules are not tracked, keep the
                    // over-approximate all-same-named resolution.
                    cands.clone()
                }
            }
        }
    }

    /// Reverse-BFS reachability closure: every node that can reach one of
    /// `sinks` through forward call edges, with a next-hop table for
    /// chain reconstruction. Deterministic for a fixed node order (FIFO
    /// queue over sorted edges).
    pub fn reach_to(&self, sinks: &[usize]) -> Reach {
        let mut reaches = vec![false; self.nodes.len()];
        let mut next = vec![usize::MAX; self.nodes.len()];
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        for &s in sinks {
            if !reaches[s] {
                reaches[s] = true;
                queue.push_back(s);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &caller in &self.redges[n] {
                if !reaches[caller] {
                    reaches[caller] = true;
                    next[caller] = n;
                    queue.push_back(caller);
                }
            }
        }
        Reach { reaches, next }
    }

    /// Render the shortest known chain from `from` to the sink set of
    /// `reach` as `` `a` → `b` → `c` ``.
    pub fn chain_names(&self, reach: &Reach, from: usize) -> String {
        reach
            .chain(from)
            .iter()
            .map(|&n| format!("`{}`", self.nodes[n].name))
            .collect::<Vec<_>>()
            .join(" → ")
    }

    /// Serialize as `obscor.callgraph.v1` JSON: one object per node with
    /// resolved edges, in node-id order (deterministic).
    pub fn to_json(&self) -> String {
        use crate::json_escape;
        let mut s = String::from("{\"schema\":\"obscor.callgraph.v1\",\"functions\":[");
        for (n, node) in self.nodes.iter().enumerate() {
            if n > 0 {
                s.push(',');
            }
            let mut sinks: Vec<&str> = Vec::new();
            if node.json_codec {
                sinks.push("json-codec");
            }
            if node.archive_codec {
                sinks.push("archive-codec");
            }
            if !node.blocking.is_empty() {
                sinks.push("blocking");
            }
            if !node.panics.is_empty() {
                sinks.push("panic");
            }
            let sinks_json =
                sinks.iter().map(|x| format!("\"{x}\"")).collect::<Vec<_>>().join(",");
            let edges_json =
                self.edges[n].iter().map(|e| e.to_string()).collect::<Vec<_>>().join(",");
            let calls_json = node
                .calls
                .iter()
                .map(|c| {
                    format!("{{\"callee\":\"{}\",\"line\":{}}}", json_escape(&c.callee), c.line)
                })
                .collect::<Vec<_>>()
                .join(",");
            s.push_str(&format!(
                "{{\"id\":{n},\"name\":\"{}\",\"file\":\"{}\",\"line\":{},\"test\":{},\
                 \"sinks\":[{sinks_json}],\"edges\":[{edges_json}],\"calls\":[{calls_json}]}}",
                json_escape(&node.name),
                json_escape(&node.file_rel),
                node.line,
                node.is_test,
            ));
        }
        s.push_str("]}");
        s
    }

    /// Serialize as Graphviz DOT; sink nodes are shaped/colored so the
    /// taint structure is visible at a glance.
    pub fn to_dot(&self) -> String {
        let mut s = String::from("digraph callgraph {\n  rankdir=LR;\n  node [shape=box];\n");
        for (n, node) in self.nodes.iter().enumerate() {
            let mut attrs = format!("label=\"{}\\n{}:{}\"", node.name, node.file_rel, node.line);
            if node.json_codec || node.archive_codec {
                attrs.push_str(", style=filled, fillcolor=lightblue");
            } else if !node.blocking.is_empty() {
                attrs.push_str(", style=filled, fillcolor=orange");
            } else if !node.panics.is_empty() {
                attrs.push_str(", style=filled, fillcolor=mistyrose");
            }
            s.push_str(&format!("  n{n} [{attrs}];\n"));
        }
        for n in 0..self.nodes.len() {
            for &t in &self.edges[n] {
                s.push_str(&format!("  n{n} -> n{t};\n"));
            }
        }
        s.push_str("}\n");
        s
    }
}

/// A reachability closure over the call graph: which nodes reach a sink
/// set, plus the next hop toward the nearest sink.
#[derive(Debug)]
pub struct Reach {
    reaches: Vec<bool>,
    next: Vec<usize>,
}

impl Reach {
    /// Does node `n` reach the sink set?
    pub fn reaches(&self, n: usize) -> bool {
        self.reaches[n]
    }

    /// The shortest known chain from `from` to a sink (inclusive on both
    /// ends). `from` itself when it is a sink.
    pub fn chain(&self, from: usize) -> Vec<usize> {
        let mut out = vec![from];
        let mut cur = from;
        while self.next[cur] != usize::MAX {
            cur = self.next[cur];
            out.push(cur);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Memoized analyses
// ---------------------------------------------------------------------------

/// Lazily-computed reachability closures over one call graph. Each
/// closure is computed at most once per audit run (the memoized
/// transitive closures the interprocedural rules share).
pub struct Analyses {
    /// The underlying call graph.
    pub graph: CallGraph,
    json: OnceCell<Reach>,
    archive: OnceCell<Reach>,
    blocking: OnceCell<Reach>,
    panicking: OnceCell<Reach>,
    lock_reach: OnceCell<BTreeMap<String, Reach>>,
}

impl Analyses {
    /// Wrap a built graph.
    pub fn new(graph: CallGraph) -> Self {
        Analyses {
            graph,
            json: OnceCell::new(),
            archive: OnceCell::new(),
            blocking: OnceCell::new(),
            panicking: OnceCell::new(),
            lock_reach: OnceCell::new(),
        }
    }

    fn sinks_where(&self, pred: impl Fn(&FnNode) -> bool) -> Vec<usize> {
        self.graph
            .nodes
            .iter()
            .enumerate()
            .filter(|&(_, n)| !n.is_test && pred(n))
            .map(|(i, _)| i)
            .collect()
    }

    /// Nodes reaching the `obscor_obs::json` codec (any depth).
    pub fn json_reach(&self) -> &Reach {
        self.json
            .get_or_init(|| self.graph.reach_to(&self.sinks_where(|n| n.json_codec)))
    }

    /// Nodes reaching the hypersparse archive codec (any depth).
    pub fn archive_reach(&self) -> &Reach {
        self.archive
            .get_or_init(|| self.graph.reach_to(&self.sinks_where(|n| n.archive_codec)))
    }

    /// Nodes reaching a direct blocking operation (any depth).
    pub fn blocking_reach(&self) -> &Reach {
        self.blocking
            .get_or_init(|| self.graph.reach_to(&self.sinks_where(|n| !n.blocking.is_empty())))
    }

    /// Nodes reaching a direct panic site (any depth).
    pub fn panic_reach(&self) -> &Reach {
        self.panicking
            .get_or_init(|| self.graph.reach_to(&self.sinks_where(|n| !n.panics.is_empty())))
    }

    /// Per lock name: the closure of nodes that (transitively) acquire
    /// it. Keys are every named lock seen in the workspace.
    pub fn lock_reach(&self) -> &BTreeMap<String, Reach> {
        self.lock_reach.get_or_init(|| {
            let mut names: Vec<String> = self
                .graph
                .nodes
                .iter()
                .filter(|n| !n.is_test)
                .flat_map(|n| n.locks.iter().map(|l| l.lock.clone()))
                .collect();
            names.sort();
            names.dedup();
            names
                .into_iter()
                .map(|name| {
                    let sinks = self
                        .sinks_where(|n| n.locks.iter().any(|l| l.lock == name));
                    let reach = self.graph.reach_to(&sinks);
                    (name, reach)
                })
                .collect()
        })
    }

    /// Describe the terminal blocking operation of `node` (the sink end
    /// of a blocking chain): `` `.lock()` at crates/obs/src/registry.rs:57 ``.
    pub fn blocking_terminal(&self, node: usize) -> String {
        let n = &self.graph.nodes[node];
        match n.blocking.first() {
            Some(op) => format!("{} at {}:{}", op.what, n.file_rel, op.line),
            None => format!("`{}`", n.name),
        }
    }

    /// Describe the terminal panic site of `node`.
    pub fn panic_terminal(&self, node: usize) -> String {
        let n = &self.graph.nodes[node];
        match n.panics.first() {
            Some(op) => format!("{} at {}:{}", op.what, n.file_rel, op.line),
            None => format!("`{}`", n.name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn prep(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from(rel), rel.into(), src.to_string())
    }

    #[test]
    fn codec_file_fns_are_level_zero() {
        let codec = prep(
            "crates/obs/src/json.rs",
            "pub fn escape(s: &str) -> String { s.into() }\n",
        );
        let idx = build_index(&[&codec]);
        assert!(idx.json_reaching.contains("escape"));
        assert!(idx.is_defined("escape"));
    }

    #[test]
    fn one_hop_taint_crosses_files() {
        let codec = prep(
            "crates/obs/src/json.rs",
            "pub fn escape(s: &str) -> String { s.into() }\n",
        );
        let helper = prep(
            "crates/a/src/emit.rs",
            "pub fn row_line(k: u32) -> String { escape(&k.to_string()) }\n",
        );
        let far = prep(
            "crates/b/src/far.rs",
            "pub fn two_hops(k: u32) -> String { row_line(k) }\n",
        );
        let idx = build_index(&[&codec, &helper, &far]);
        assert!(idx.json_reaching.contains("escape"), "level 0");
        assert!(idx.json_reaching.contains("row_line"), "one hop");
        assert!(!idx.json_reaching.contains("two_hops"), "taint is one hop only");
    }

    #[test]
    fn qualified_codec_path_taints_directly() {
        let user = prep(
            "crates/a/src/dump.rs",
            "pub fn dump(v: u64) -> String { obscor_obs::json::escape(&v.to_string()) }\npub fn via_mod(v: u64) -> String { json::escape(&v.to_string()) }\npub fn unrelated(v: u64) -> u64 { v + 1 }\n",
        );
        let idx = build_index(&[&user]);
        assert!(idx.json_reaching.contains("dump"));
        assert!(idx.json_reaching.contains("via_mod"));
        assert!(!idx.json_reaching.contains("unrelated"));
    }

    #[test]
    fn full_graph_reaches_any_depth() {
        let codec = prep(
            "crates/obs/src/json.rs",
            "pub fn escape(s: &str) -> String { s.into() }\n",
        );
        let helper = prep(
            "crates/a/src/emit.rs",
            "pub fn row_line(k: u32) -> String { escape(&k.to_string()) }\n",
        );
        let far = prep(
            "crates/b/src/far.rs",
            "pub fn two_hops(k: u32) -> String { row_line(k) }\npub fn three_hops(k: u32) -> String { two_hops(k) }\npub fn unrelated() {}\n",
        );
        let an = Analyses::new(build_graph(&[&codec, &helper, &far]));
        let g = &an.graph;
        let r = an.json_reach();
        let id = |name: &str| g.by_name[name][0];
        assert!(r.reaches(id("escape")));
        assert!(r.reaches(id("row_line")));
        assert!(r.reaches(id("two_hops")), "full closure crosses two hops");
        assert!(r.reaches(id("three_hops")), "and three");
        assert!(!r.reaches(id("unrelated")));
        let chain = g.chain_names(r, id("three_hops"));
        assert_eq!(chain, "`three_hops` → `two_hops` → `row_line` → `escape`");
    }

    #[test]
    fn archive_codec_is_a_second_sink() {
        let codec = prep(
            "crates/hypersparse/src/serialize.rs",
            "pub fn encode(v: &[u8]) -> Vec<u8> { v.to_vec() }\n",
        );
        let user = prep(
            "crates/a/src/lib.rs",
            "pub fn archive(v: &[u8]) -> Vec<u8> { encode(v) }\npub fn qualified(v: &[u8]) -> Vec<u8> { obscor_hypersparse::serialize::encode(v) }\n",
        );
        let an = Analyses::new(build_graph(&[&codec, &user]));
        let g = &an.graph;
        let r = an.archive_reach();
        assert!(r.reaches(g.by_name["encode"][0]));
        assert!(r.reaches(g.by_name["archive"][0]));
        assert!(r.reaches(g.by_name["qualified"][0]), "qualified path is level 0");
        assert!(!an.json_reach().reaches(g.by_name["archive"][0]));
    }

    #[test]
    fn blocking_and_panic_sites_are_classified() {
        let f = prep(
            "crates/a/src/lib.rs",
            "pub fn takes() { m.lock(); }\n\
             pub fn reads(buf: &mut [u8]) { r.read(buf); p.join(\"x\"); }\n\
             pub fn recvs() { let _ = rx.recv(); }\n\
             pub fn boom(x: Option<u8>) -> u8 { x.unwrap() }\n\
             pub fn caller() { takes(); }\n",
        );
        let an = Analyses::new(build_graph(&[&f]));
        let g = &an.graph;
        let id = |name: &str| g.by_name[name][0];
        assert_eq!(g.nodes[id("takes")].blocking.len(), 1);
        assert!(
            g.nodes[id("reads")].blocking.is_empty(),
            "args present: io read / path join are not blocking ops"
        );
        assert_eq!(g.nodes[id("recvs")].blocking.len(), 1);
        assert_eq!(g.nodes[id("boom")].panics.len(), 1);
        assert!(an.blocking_reach().reaches(id("caller")));
        assert!(an.panic_reach().reaches(id("boom")));
        assert!(!an.panic_reach().reaches(id("takes")));
    }

    #[test]
    fn named_locks_are_recorded_per_fn() {
        let f = prep(
            "crates/a/src/lib.rs",
            "pub fn ab(&self) { let a = self.alpha.lock(); let b = self.beta.lock(); }\n\
             pub fn unnamed(v: &[Mutex<u8>]) { let g = v[0].lock(); }\n",
        );
        let an = Analyses::new(build_graph(&[&f]));
        let g = &an.graph;
        let ab = &g.nodes[g.by_name["ab"][0]];
        let names: Vec<&str> = ab.locks.iter().map(|l| l.lock.as_str()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
        assert!(g.nodes[g.by_name["unnamed"][0]].locks.is_empty());
        assert!(an.lock_reach().contains_key("alpha"));
        assert!(an.lock_reach()["beta"].reaches(g.by_name["ab"][0]));
    }

    #[test]
    fn owner_map_attributes_nested_fns_to_the_innermost() {
        let f = prep(
            "crates/a/src/lib.rs",
            "pub fn outer() {\n    fn inner(x: Option<u8>) -> u8 { x.unwrap() }\n    inner(None);\n}\n",
        );
        let g = build_graph(&[&f]);
        let outer = g.by_name["outer"][0];
        let inner = g.by_name["inner"][0];
        assert!(g.nodes[outer].panics.is_empty(), "unwrap belongs to inner");
        assert_eq!(g.nodes[inner].panics.len(), 1);
        assert!(g.edges[outer].contains(&inner));
    }

    #[test]
    fn macros_and_keywords_are_not_call_sites() {
        let f = prep(
            "crates/a/src/lib.rs",
            "pub fn f(x: u32) -> String { if (x > 0) { format!(\"{x}\") } else { String::new() } }\n",
        );
        let g = build_graph(&[&f]);
        let calls: Vec<&str> =
            g.nodes[g.by_name["f"][0]].calls.iter().map(|c| c.callee.as_str()).collect();
        assert!(!calls.contains(&"if"), "keywords excluded");
        assert!(!calls.contains(&"format"), "macro names excluded");
        assert!(calls.contains(&"new"));
    }

    #[test]
    fn recursion_terminates_and_reaches() {
        let f = prep(
            "crates/a/src/lib.rs",
            "pub fn a(n: u32) { if n > 0 { b(n - 1) } }\npub fn b(n: u32) { a(n); x.lock(); }\n",
        );
        let an = Analyses::new(build_graph(&[&f]));
        let g = &an.graph;
        assert!(an.blocking_reach().reaches(g.by_name["a"][0]));
        assert!(an.blocking_reach().reaches(g.by_name["b"][0]));
    }

    #[test]
    fn exports_are_deterministic_and_well_formed() {
        let f = prep(
            "crates/a/src/lib.rs",
            "pub fn f() { g(); }\npub fn g() { h.lock(); }\n",
        );
        let g1 = build_graph(&[&f]).to_json();
        let g2 = build_graph(&[&f]).to_json();
        assert_eq!(g1, g2);
        assert!(g1.starts_with("{\"schema\":\"obscor.callgraph.v1\""));
        assert!(g1.contains("\"name\":\"f\""));
        assert!(g1.contains("\"blocking\""));
        let dot = build_graph(&[&f]).to_dot();
        assert!(dot.starts_with("digraph callgraph {"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn typed_paths_resolve_within_their_impl() {
        let f = prep(
            "crates/a/src/lib.rs",
            "pub struct A;\n\
             impl A { pub fn new() -> A { m.lock(); A } }\n\
             pub struct B;\n\
             impl B { pub fn new() -> B { B } }\n\
             pub fn makes_a() -> A { A::new() }\n\
             pub fn makes_b() -> B { B::new() }\n\
             pub fn makes_std() -> AtomicBool { AtomicBool::new(false) }\n",
        );
        let an = Analyses::new(build_graph(&[&f]));
        let g = &an.graph;
        let id = |name: &str| g.by_name[name][0];
        assert!(an.blocking_reach().reaches(id("makes_a")));
        assert!(!an.blocking_reach().reaches(id("makes_b")), "B::new does not lock");
        assert!(
            g.edges[id("makes_std")].is_empty(),
            "AtomicBool has no workspace impl: no edge at all"
        );
    }

    #[test]
    fn dotted_method_receivers_contribute_no_edges() {
        let f = prep(
            "crates/a/src/lib.rs",
            "pub fn map(x: u32) -> u32 { m.lock(); x }\n\
             pub fn adapter(v: &[u32]) -> Vec<u32> { v.iter().map(|x| x + 1).collect() }\n\
             pub fn direct(x: u32) -> u32 { map(x) }\n",
        );
        let an = Analyses::new(build_graph(&[&f]));
        let g = &an.graph;
        let id = |name: &str| g.by_name[name][0];
        assert!(
            !an.blocking_reach().reaches(id("adapter")),
            ".map adapter must not resolve to the workspace fn `map`"
        );
        assert!(an.blocking_reach().reaches(id("direct")), "free call still resolves");
    }

    #[test]
    fn self_and_self_type_calls_resolve_in_their_own_impl() {
        let f = prep(
            "crates/a/src/lib.rs",
            "pub struct R;\n\
             impl R {\n\
                 fn helper(&self) { m.lock(); }\n\
                 pub fn calls_self(&self) { self.helper(); }\n\
                 pub fn calls_self_ty() -> R { Self::fresh() }\n\
                 fn fresh() -> R { R }\n\
             }\n\
             pub struct Other;\n\
             impl Other { pub fn helper(&self) {} }\n",
        );
        let an = Analyses::new(build_graph(&[&f]));
        let g = &an.graph;
        let calls_self = g.by_name["calls_self"][0];
        assert!(an.blocking_reach().reaches(calls_self));
        let helpers = &g.by_name["helper"];
        let r_helper =
            *helpers.iter().find(|&&t| g.nodes[t].impl_type == "R").expect("R::helper");
        assert_eq!(g.edges[calls_self], vec![r_helper], "only R's helper, not Other's");
        let calls_self_ty = g.by_name["calls_self_ty"][0];
        assert_eq!(g.edges[calls_self_ty], vec![g.by_name["fresh"][0]]);
    }

    #[test]
    fn test_fns_never_seed_sinks() {
        let f = prep(
            "crates/a/src/lib.rs",
            "pub fn lib_fn() { helper(); }\n\
             fn helper() {}\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { m.lock(); }\n}\n",
        );
        let an = Analyses::new(build_graph(&[&f]));
        let g = &an.graph;
        // Name resolution still edges to the test helper, but it is not a
        // sink, so the lib fn does not become blocking-tainted.
        assert!(!an.blocking_reach().reaches(g.by_name["lib_fn"][0]));
    }
}
