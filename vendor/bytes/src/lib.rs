//! Offline stand-in for `bytes`.
//!
//! Provides the [`Buf`] (reading cursor over `&[u8]`) and [`BufMut`]
//! (appending writer over `Vec<u8>`) trait surface the pcap codec uses.
//! Little-endian accessors mirror upstream's `*_le` methods.

#![forbid(unsafe_code)]

/// A readable byte cursor. Implemented for `&[u8]`, where each read
/// advances the slice in place.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Skip `cnt` bytes.
    ///
    /// # Panics
    /// Panics if fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Read the next byte.
    ///
    /// # Panics
    /// Panics if the buffer is empty.
    fn get_u8(&mut self) -> u8;

    /// Read a little-endian `u16`.
    ///
    /// # Panics
    /// Panics if fewer than 2 bytes remain.
    fn get_u16_le(&mut self) -> u16;

    /// Read a little-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32;

    /// Read a big-endian `u16`.
    ///
    /// # Panics
    /// Panics if fewer than 2 bytes remain.
    fn get_u16(&mut self) -> u16;

    /// Read a big-endian `u32`.
    ///
    /// # Panics
    /// Panics if fewer than 4 bytes remain.
    fn get_u32(&mut self) -> u32;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_le_bytes([head[0], head[1]])
    }

    fn get_u32_le(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_le_bytes([head[0], head[1], head[2], head[3]])
    }

    fn get_u16(&mut self) -> u16 {
        let (head, rest) = self.split_at(2);
        *self = rest;
        u16::from_be_bytes([head[0], head[1]])
    }

    fn get_u32(&mut self) -> u32 {
        let (head, rest) = self.split_at(4);
        *self = rest;
        u32::from_be_bytes([head[0], head[1], head[2], head[3]])
    }
}

/// An appendable byte sink. Implemented for `Vec<u8>`.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32);
    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16);
    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i32_le(&mut self, v: i32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u16(&mut self, v: u16) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_be_bytes());
    }
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn round_trip_le() {
        let mut buf = Vec::new();
        buf.put_u32_le(0xA1B2_C3D4);
        buf.put_u16_le(0x0102);
        buf.put_i32_le(-7);
        buf.put_u8(9);
        let mut rd: &[u8] = &buf;
        assert_eq!(rd.remaining(), 11);
        assert_eq!(rd.get_u32_le(), 0xA1B2_C3D4);
        assert_eq!(rd.get_u16_le(), 0x0102);
        assert_eq!(rd.get_u32_le() as i32, -7);
        assert_eq!(rd.get_u8(), 9);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    fn advance_skips() {
        let data = [1u8, 2, 3, 4, 5, 6];
        let mut rd: &[u8] = &data;
        rd.advance(4);
        assert_eq!(rd.get_u16_le(), u16::from_le_bytes([5, 6]));
    }
}
