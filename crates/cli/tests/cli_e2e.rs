//! End-to-end tests of the `obscor` binary.

use std::process::Command;

fn obscor() -> Command {
    Command::new(env!("CARGO_BIN_EXE_obscor"))
}

#[test]
fn info_prints_calibration() {
    let out = obscor().args(["info", "--nv", "2^13", "--seed", "9"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("scenario calibration"));
    assert!(stdout.contains("sqrt(N_V) knee"));
    assert!(stdout.contains("2020-06-17-12:00:00"));
}

#[test]
fn reproduce_single_artifact() {
    let out = obscor()
        .args(["reproduce", "--nv", "2^13", "--seed", "9", "--fast", "--only", "table1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("TABLE I"));
    assert!(stdout.contains("2021-04"));
    assert!(!stdout.contains("FIG 4"), "--only must print one artifact");
}

#[test]
fn reproduce_tsv_is_machine_readable() {
    let out = obscor()
        .args(["reproduce", "--nv", "2^13", "--seed", "9", "--fast", "--tsv"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.lines().any(|l| l.starts_with("fig4\t")));
    assert!(stdout.lines().any(|l| l.starts_with("fit\t")));
}

#[test]
fn reproduce_check_passes_non_strict() {
    // --fast implies non-strict validation; must pass at tiny N_V.
    let out = obscor()
        .args(["reproduce", "--nv", "2^13", "--seed", "9", "--fast", "--check", "--only", "fig1"])
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("SELF-VALIDATION"));
    assert!(stderr.contains("PASS"));
}

#[test]
fn generate_writes_a_readable_pcap() {
    let dir = std::env::temp_dir().join("obscor_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("w0.pcap");
    let out = obscor()
        .args([
            "generate",
            "--nv",
            "2^12",
            "--seed",
            "9",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let bytes = std::fs::read(&path).unwrap();
    // Global header magic, LE.
    assert_eq!(&bytes[..4], &0xA1B2_C3D4u32.to_le_bytes());
    let packets = obscor_pcap::PcapReader::new(&bytes).unwrap().read_all().unwrap();
    assert_eq!(packets.len(), 1 << 12);
    std::fs::remove_file(&path).ok();
}

#[test]
fn generate_with_filter_keeps_matching_packets_only() {
    let dir = std::env::temp_dir().join("obscor_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("filtered.pcap");
    let out = obscor()
        .args([
            "generate",
            "--nv",
            "2^12",
            "--seed",
            "9",
            "--filter",
            "proto tcp and not port 6667",
            "--out",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("filter kept"));
    let bytes = std::fs::read(&path).unwrap();
    let packets = obscor_pcap::PcapReader::new(&bytes).unwrap().read_all().unwrap();
    assert!(!packets.is_empty());
    assert!(packets
        .iter()
        .all(|p| p.proto == obscor_pcap::Protocol::Tcp && p.dst_port != 6667));
    std::fs::remove_file(&path).ok();
}

#[test]
fn metrics_flag_writes_schema_valid_json_with_all_stage_spans() {
    let dir = std::env::temp_dir().join("obscor_cli_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    // No subcommand: bare flags run the default `reproduce`.
    let out = obscor()
        .args([
            "--nv",
            "2^13",
            "--seed",
            "9",
            "--fast",
            "--only",
            "table1",
            "--metrics",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(out.status.success(), "stderr:\n{stderr}");
    assert!(stderr.contains("wrote") && stderr.contains("metrics"), "stderr:\n{stderr}");
    let text = std::fs::read_to_string(&path).unwrap();
    let snap = obscor_obs::MetricsSnapshot::from_json(&text).expect("schema-valid JSON");
    // Every pipeline stage must surface both a span timing and a call
    // counter (the ISSUE's acceptance criterion).
    for stage in [
        "pipeline.run",
        "stage.capture",
        "stage.matrices",
        "stage.quantities",
        "stage.degrees",
        "stage.honeyfarm",
        "stage.quadrants",
        "stage.distributions",
        "stage.peaks",
        "stage.curves",
        "stage.fits",
        "telescope.capture_window",
        "telescope.build_matrix",
        "hypersparse.leaf_compact",
        "hypersparse.accumulator.finalize",
        "hypersparse.merge_all",
        "core.degrees",
        "core.binning",
        "core.zm_fit",
        "core.peak_correlation",
        "core.temporal_curves",
        "core.fit_curves",
    ] {
        let h = format!("span.{stage}.ns");
        let c = format!("span.{stage}.calls_total");
        assert!(snap.histograms.contains_key(&h), "missing histogram {h}");
        assert!(snap.counters.get(&c).copied().unwrap_or(0) > 0, "missing counter {c}");
    }
    // Work counters reflect the run: 5 windows of 2^13 valid packets each.
    assert_eq!(snap.counters["telescope.capture.valid_packets_total"], 5 * (1 << 13));
    assert_eq!(snap.counters["stage.capture.windows_total"], 5);
    assert_eq!(snap.gauges["config.n_v"], 1 << 13);
    std::fs::remove_file(&path).ok();
}

#[test]
fn bad_invocations_fail_with_usage() {
    for args in [
        vec!["reproduce", "--only", "fig99"],
        vec!["generate"], // missing --out
        vec!["nonsense"],
        vec!["reproduce", "--nv", "banana"],
        vec!["generate", "--filter", "proto banana", "--out", "/tmp/x.pcap"],
    ] {
        let out = obscor().args(&args).output().unwrap();
        assert!(!out.status.success(), "should fail: {args:?}");
        let stderr = String::from_utf8(out.stderr).unwrap();
        assert!(stderr.contains("usage:"), "no usage in stderr for {args:?}");
    }
}
