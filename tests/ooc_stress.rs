//! Out-of-core stress: large constant-packet windows built under a fixed
//! live-byte budget on a real spill directory (DESIGN.md §16).
//!
//! The always-on test scales the paper geometry down; the `#[ignore]`d
//! tier-2 test builds a full `2^26`-packet window (the paper's windows
//! are `2^30`) under a budget far below the fold's unconstrained
//! footprint, proving the scheduler genuinely evicts and reloads at scale
//! while remaining bit-identical to the in-memory build.
//!
//! Run the big one explicitly:
//!
//! ```text
//! cargo test --release --test ooc_stress -- --ignored
//! ```

use obscor::hypersparse::hier::HierarchicalAccumulator;
use obscor::hypersparse::reduce::NetworkQuantities;
use obscor::hypersparse::spill::{DirMedium, SpillAccumulator, SpillConfig};
use obscor::hypersparse::Csr;
use std::sync::Arc;

/// Deterministic heavy-tailed edge stream, generated on the fly so the
/// driver never holds the packet list in memory (the point of the test is
/// the *matrix* footprint, not the driver's).
fn edges(n: usize, seed: u64, src_bits: u32, dst_bits: u32) -> impl Iterator<Item = (u32, u32)> {
    let mut state = seed | 1;
    let (src_mask, dst_mask) = ((1u32 << src_bits) - 1, (1u32 << dst_bits) - 1);
    (0..n).map(move |_| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // The edge cardinality (2^src_bits x 2^dst_bits) bounds the final
        // matrix size; each test picks it so the carry levels saturate at
        // a footprint well below the unconstrained fold's resident sum but
        // whose largest single merge still fits the pinned budget.
        ((state >> 24) as u32 & src_mask, ((state >> 8) as u32 & dst_mask) | (44 << 24))
    })
}

fn in_memory(n: usize, seed: u64, bits: (u32, u32), leaf_capacity: usize) -> Csr<u64> {
    let mut acc = HierarchicalAccumulator::<u64>::with_leaf_capacity(leaf_capacity);
    for (s, d) in edges(n, seed, bits.0, bits.1) {
        acc.push_edge(s, d);
    }
    acc.finalize()
}

/// Peak resident set size (`VmHWM`) of this process in bytes, from
/// `/proc/self/status`. `None` off Linux or if the field is missing.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Reset `VmHWM` to the current RSS (`echo 5 > /proc/self/clear_refs`),
/// so the next [`peak_rss_bytes`] reading is the peak of one phase alone
/// rather than of the whole process lifetime. `false` where the kernel
/// forbids it — callers skip the cross-check then rather than fail.
fn reset_peak_rss() -> bool {
    std::fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Build `n` packets spilled-to-disk under `budget` and check the full
/// contract: bit identity, exact coverage, real eviction traffic, and a
/// peak tracked footprint within the budget (with zero overruns — the
/// budget must have been *feasible*, not merely aspired to).
///
/// `check_rss` additionally cross-checks the *operating system's*
/// peak-RSS accounting against the scheduler's own tracked bytes: the
/// kernel watermark (`VmHWM`) is reset before the spilled build and again
/// before the in-memory oracle, so each phase's true peak is read in
/// isolation, and the spilled build must peak strictly below the
/// unconstrained fold. A scheduler that quietly stopped evicting — or a
/// tracker that silently under-counted live bytes — would peak at the
/// oracle's footprint and fail. Measured on whatever box runs the test,
/// so no hand-calibrated byte constants are pinned.
fn run_budgeted(
    n: usize,
    seed: u64,
    bits: (u32, u32),
    leaf_capacity: usize,
    budget: u64,
    check_rss: bool,
) {
    let rss_metered = check_rss && reset_peak_rss();
    let dir = std::env::temp_dir();
    let medium = DirMedium::create_in(&dir).expect("spill dir in temp");
    let config = SpillConfig {
        leaf_capacity,
        memory_budget: Some(budget),
        ..SpillConfig::default()
    };
    let mut acc = SpillAccumulator::new(config, Arc::new(medium));
    for (s, d) in edges(n, seed, bits.0, bits.1) {
        acc.push_edge(s, d);
    }
    let (matrix, report) = acc.finalize();
    assert!(report.is_exact(), "spill run lost packets: {report:?}");
    assert_eq!(report.packets_expected, n as u64);
    assert!(
        report.stats.evictions > 0,
        "budget {budget} never forced an eviction: {:?}",
        report.stats
    );
    assert!(
        report.stats.reloads > 0,
        "evicted parts must be reloaded for their merges: {:?}",
        report.stats
    );
    assert_eq!(
        report.stats.budget_overruns, 0,
        "budget {budget} was infeasible: {:?}",
        report.stats
    );
    assert!(
        report.stats.peak_live_bytes <= budget,
        "peak tracked bytes {} exceeded budget {budget}",
        report.stats.peak_live_bytes
    );
    // RSS cross-check (tier-2): read the spilled phase's peak, reset the
    // watermark, and let the oracle build record its own peak below.
    let spilled_peak = if rss_metered { peak_rss_bytes() } else { None };
    let oracle_metered = rss_metered && reset_peak_rss();
    let oracle = in_memory(n, seed, bits, leaf_capacity);
    if let (Some(spilled), true, Some(oracle_peak)) =
        (spilled_peak, oracle_metered, peak_rss_bytes())
    {
        eprintln!("RSS spilled peak {spilled}  oracle peak {oracle_peak}");
        // Demand a real saving (at least an eighth of the oracle's peak),
        // not a photo finish: measured here the ratio is ~0.69.
        assert!(
            spilled <= oracle_peak - oracle_peak / 8,
            "the spilled build peaked at {spilled} bytes RSS, not \
             meaningfully below the unconstrained in-memory fold's \
             {oracle_peak} (budget {budget}); the tracked-byte accounting \
             is not bounding real memory"
        );
    }
    assert_eq!(matrix, oracle, "spilled build diverged from the in-memory fold");
    assert_eq!(
        NetworkQuantities::compute(&matrix),
        NetworkQuantities::compute(&oracle)
    );
}

#[test]
fn scaled_window_stays_within_a_pinned_budget() {
    // 2^20 packets over 2^8 x 2^5 distinct edges in 2^13-packet leaves
    // (128 leaves, 7 carry levels). Leaves are as large as the edge space,
    // so every carry level saturates near the ~134 KiB full matrix: the
    // unconstrained fold keeps ~1 MiB resident, the largest single merge
    // needs ~0.4 MiB, and a 640 KiB budget sits between — evictions are
    // forced, yet the budget stays feasible with margin on both sides.
    // No RSS cross-check here: at sub-MiB scale, harness baseline and
    // allocator noise swamp the signal. The tier-2 test carries it.
    run_budgeted(1 << 20, 0xA5A5_0001, (8, 5), 1 << 13, 640 << 10, false);
}

#[test]
#[ignore = "tier-2: 2^26-packet window; run with --release -- --ignored"]
fn full_scale_window_builds_under_a_fixed_budget() {
    // 2^26 packets over 2^14 x 2^6 distinct edges in 2^17-packet leaves —
    // 512 leaves (9 carry levels), the paper's hierarchical geometry at
    // 1/16 window scale. Upper carry levels saturate near the ~12 MiB
    // full matrix; the 40 MiB budget covers the largest single merge
    // (~38 MiB tracked at its peak — 30 MiB is already infeasible) while
    // forcing the rest of the carry chain out to disk.
    //
    // RSS cross-check: per-phase `VmHWM` peaks, spilled must sit below
    // the unconstrained oracle (measured here: ~150 MiB vs ~177 MiB —
    // untracked merge/serialization transients ride on top of the budget
    // in both phases, which is exactly why the check reads the OS's
    // numbers instead of trusting the tracker's).
    run_budgeted(1 << 26, 0xA5A5_0002, (14, 6), 1 << 17, 40u64 << 20, true);
}
