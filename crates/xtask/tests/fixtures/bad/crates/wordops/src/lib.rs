//! Seeds `word-bit-manip`: hand-rolled u64 word/bit set logic outside
//! the assoc bitset module.

pub fn set_bit(words: &mut [u64], key: u16) {
    words[usize::from(key >> 6)] |= 1u64 << (key & 63);
}

pub fn overlap(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
}

// Negatives: each half of a signature alone, a popcount with no mask, an
// allow-marked site, and test code all stay silent.
pub fn word_index(key: u16) -> usize {
    usize::from(key >> 6)
}

pub fn low_bits(key: u16) -> u16 {
    key & 63
}

pub fn census(leaves: u64) -> u32 {
    leaves.count_ones()
}

pub fn allowed(a: u64, b: u64) -> u32 {
    // audit:allow(word-bit-manip) — fixture: sanctioned one-off probe
    (a & b).count_ones()
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        let (a, b) = (3u64, 1u64);
        assert_eq!((a & b).count_ones(), 1);
    }
}
