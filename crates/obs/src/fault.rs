//! The workspace's shared fault vocabulary.
//!
//! Every layer that reads archived or captured bytes (the hypersparse leaf
//! codec, the pcap codec, the telescope's recovering restore) classifies
//! its errors into the same two-point taxonomy so recovery policy and
//! fault accounting can be written once:
//!
//! * [`FaultClass::Transient`] — the *read* failed (short read, interrupted
//!   I/O). The bytes themselves may be fine; retrying can succeed.
//! * [`FaultClass::Permanent`] — the *bytes* are wrong (bad magic, CRC
//!   mismatch, structural corruption). No number of retries helps; the
//!   only safe responses are quarantine or fail-stop.
//!
//! The enum lives in this crate — the dependency-free base of the
//! workspace — because fault events are counted through the same metrics
//! registry ([`crate::counter`]) and the class string ([`FaultClass::as_str`])
//! is the label suffix used in those counter names
//! (`telescope.restore.transient_faults_total`, …).

/// Whether a fault is worth retrying.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// The read may succeed if repeated (short read / interrupted I/O).
    Transient,
    /// The data is corrupt; retrying cannot help.
    Permanent,
}

impl FaultClass {
    /// True for faults a bounded retry loop should re-attempt.
    pub fn is_transient(self) -> bool {
        matches!(self, FaultClass::Transient)
    }

    /// Stable lowercase label, used as a metric-name suffix.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultClass::Transient => "transient",
            FaultClass::Permanent => "permanent",
        }
    }
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_is_retryable_permanent_is_not() {
        assert!(FaultClass::Transient.is_transient());
        assert!(!FaultClass::Permanent.is_transient());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FaultClass::Transient.as_str(), "transient");
        assert_eq!(FaultClass::Permanent.as_str(), "permanent");
        assert_eq!(FaultClass::Permanent.to_string(), "permanent");
    }
}
