//! Source behaviour classes.
//!
//! The paper describes darkspace traffic as "backscatter from randomly
//! spoofed sources used in denial-of-service attacks, the automated spread
//! of Internet worms and viruses, scanning of address space by attackers
//! or malware looking for vulnerable targets, and various
//! misconfigurations", plus "longer-duration, low-intensity events
//! intended to establish and maintain botnets". Each class gets a
//! behaviour profile that shapes the packets it emits; the honeyfarm's
//! engagement logic classifies sources from this behaviour (with noise),
//! reproducing GreyNoise's enrichment metadata.

use obscor_pcap::Protocol;
use rand::{Rng, RngExt};

/// Common scan-target ports for the scanner/botnet profiles.
const SCAN_PORTS: [u16; 12] =
    [22, 23, 80, 443, 445, 1433, 3306, 3389, 5555, 8080, 8443, 2323];

/// The behavioural class of a traffic source.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SourceClass {
    /// Address-space scanning (vulnerability discovery). TCP SYNs to a
    /// small set of service ports, high fan-out.
    Scanner,
    /// Botnet maintenance traffic: long-lived, low intensity, fixed
    /// command port.
    Botnet,
    /// DoS backscatter from spoofed sources: responses (TCP from port 80,
    /// ICMP) to addresses that never initiated anything.
    Backscatter,
    /// Misconfiguration (mistyped addresses, broken NATs): UDP to
    /// arbitrary high ports.
    Misconfig,
}

impl SourceClass {
    /// All classes, in the order used for stratified assignment.
    pub const ALL: [SourceClass; 4] =
        [SourceClass::Scanner, SourceClass::Botnet, SourceClass::Backscatter, SourceClass::Misconfig];

    /// Stable lowercase label (the honeyfarm metadata vocabulary).
    pub fn label(&self) -> &'static str {
        match self {
            SourceClass::Scanner => "scanner",
            SourceClass::Botnet => "botnet",
            SourceClass::Backscatter => "backscatter",
            SourceClass::Misconfig => "misconfig",
        }
    }

    /// Parse a label produced by [`SourceClass::label`].
    pub fn from_label(s: &str) -> Option<SourceClass> {
        Self::ALL.into_iter().find(|c| c.label() == s)
    }

    /// Draw the transport protocol for one emitted packet.
    pub fn sample_protocol<R: Rng + ?Sized>(&self, rng: &mut R) -> Protocol {
        match self {
            SourceClass::Scanner => Protocol::Tcp,
            SourceClass::Botnet => {
                if rng.random::<f64>() < 0.8 {
                    Protocol::Tcp
                } else {
                    Protocol::Udp
                }
            }
            SourceClass::Backscatter => {
                if rng.random::<f64>() < 0.6 {
                    Protocol::Tcp
                } else {
                    Protocol::Icmp
                }
            }
            SourceClass::Misconfig => Protocol::Udp,
        }
    }

    /// Draw the destination port for one emitted packet (0 for ICMP).
    pub fn sample_dst_port<R: Rng + ?Sized>(&self, proto: Protocol, rng: &mut R) -> u16 {
        if proto == Protocol::Icmp {
            return 0;
        }
        match self {
            SourceClass::Scanner => SCAN_PORTS[rng.random_range(0..SCAN_PORTS.len())],
            SourceClass::Botnet => 6667, // fixed C2 port
            SourceClass::Backscatter => rng.random_range(1024..u16::MAX),
            SourceClass::Misconfig => rng.random_range(30_000..60_000),
        }
    }

    /// Draw the source port (backscatter answers *from* service ports).
    pub fn sample_src_port<R: Rng + ?Sized>(&self, proto: Protocol, rng: &mut R) -> u16 {
        if proto == Protocol::Icmp {
            return 0;
        }
        match self {
            SourceClass::Backscatter => {
                if rng.random::<f64>() < 0.7 {
                    80
                } else {
                    443
                }
            }
            _ => rng.random_range(1024..u16::MAX),
        }
    }

    /// Class mixture by brightness stratum: the brightest beam is
    /// dominated by scanners (mass scanning services like Shodan/criminal
    /// scanners), the dim tail by misconfigurations and backscatter.
    pub fn assign_by_brightness<R: Rng + ?Sized>(log2_d: f64, rng: &mut R) -> SourceClass {
        let u: f64 = rng.random();
        if log2_d >= 10.0 {
            // Bright: 70% scanner, 20% botnet, 10% backscatter.
            if u < 0.7 {
                SourceClass::Scanner
            } else if u < 0.9 {
                SourceClass::Botnet
            } else {
                SourceClass::Backscatter
            }
        } else if log2_d >= 4.0 {
            if u < 0.4 {
                SourceClass::Scanner
            } else if u < 0.7 {
                SourceClass::Botnet
            } else if u < 0.9 {
                SourceClass::Backscatter
            } else {
                SourceClass::Misconfig
            }
        } else {
            // Dim tail.
            if u < 0.15 {
                SourceClass::Scanner
            } else if u < 0.35 {
                SourceClass::Botnet
            } else if u < 0.7 {
                SourceClass::Backscatter
            } else {
                SourceClass::Misconfig
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn labels_round_trip() {
        for c in SourceClass::ALL {
            assert_eq!(SourceClass::from_label(c.label()), Some(c));
        }
        assert_eq!(SourceClass::from_label("nonsense"), None);
    }

    #[test]
    fn scanner_ports_come_from_scan_list() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let proto = SourceClass::Scanner.sample_protocol(&mut rng);
            assert_eq!(proto, Protocol::Tcp);
            let port = SourceClass::Scanner.sample_dst_port(proto, &mut rng);
            assert!(SCAN_PORTS.contains(&port));
        }
    }

    #[test]
    fn botnet_uses_fixed_c2_port() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let proto = SourceClass::Botnet.sample_protocol(&mut rng);
            assert_eq!(SourceClass::Botnet.sample_dst_port(proto, &mut rng), 6667);
        }
    }

    #[test]
    fn backscatter_replies_from_service_ports() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut saw_icmp = false;
        for _ in 0..200 {
            let proto = SourceClass::Backscatter.sample_protocol(&mut rng);
            if proto == Protocol::Icmp {
                saw_icmp = true;
                assert_eq!(SourceClass::Backscatter.sample_src_port(proto, &mut rng), 0);
            } else {
                let sp = SourceClass::Backscatter.sample_src_port(proto, &mut rng);
                assert!(sp == 80 || sp == 443);
            }
        }
        assert!(saw_icmp, "backscatter should emit some ICMP");
    }

    #[test]
    fn brightness_stratification_favours_scanners_when_bright() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 5_000;
        let bright_scanners = (0..n)
            .filter(|_| SourceClass::assign_by_brightness(14.0, &mut rng) == SourceClass::Scanner)
            .count();
        let dim_scanners = (0..n)
            .filter(|_| SourceClass::assign_by_brightness(1.0, &mut rng) == SourceClass::Scanner)
            .count();
        assert!(bright_scanners as f64 / n as f64 > 0.6);
        assert!(dim_scanners < bright_scanners);
    }

    #[test]
    fn dim_tail_contains_misconfig() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 2_000;
        let misconfig = (0..n)
            .filter(|_| SourceClass::assign_by_brightness(1.0, &mut rng) == SourceClass::Misconfig)
            .count();
        assert!(misconfig > n / 5, "misconfig share {misconfig}/{n}");
    }
}
