//! Packet emission.
//!
//! A [`PacketStream`] renders the world state at a telescope-window
//! instant into an endless stream of packets arriving at the darkspace:
//! sources are drawn from the active population by alias sampling (so a
//! source's expected share of the window equals its brightness share),
//! destinations and headers follow the source's class profile, and
//! timestamps advance with exponential inter-arrivals at a configured
//! aggregate rate — which is what makes constant-packet windows have the
//! *variable durations* of Table I.
//!
//! A small fraction of emitted packets is legitimate traffic addressed to
//! the darkspace's few allocated addresses; the telescope must discard
//! these (the paper: "after discarding the small amount of legitimate
//! traffic from the incoming packets, the remaining data represent a
//! continuous view of anomalous unsolicited traffic").

use crate::class::SourceClass;
use crate::population::SourcePopulation;
use obscor_pcap::{Ip4, Packet, Protocol};
use obscor_stats::AliasTable;
use rand::{Rng, RngExt};

/// Traffic shaping parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficConfig {
    /// Aggregate packet arrival rate at the darkspace (packets/second).
    /// The paper's windows imply ~10^6 pkt/s for a /8.
    pub packets_per_sec: f64,
    /// Fraction of arriving packets that are legitimate traffic to
    /// allocated addresses (discarded by the telescope filter).
    pub legit_fraction: f64,
    /// Number of allocated (non-dark) addresses at the base of the /8.
    pub n_allocated: u32,
    /// Diurnal modulation amplitude (0..1): the aggregate arrival rate is
    /// scaled by `1 − A·cos(2π·hour/24)`, so midnight windows run slower
    /// (longer) and noon windows faster (shorter) — the variable
    /// durations of Table I at constant packets.
    pub diurnal_amplitude: f64,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        Self {
            packets_per_sec: 1.0e6,
            legit_fraction: 0.005,
            n_allocated: 256,
            diurnal_amplitude: 0.25,
        }
    }
}

impl TrafficConfig {
    /// The effective arrival rate at model instant `t` (months): the base
    /// rate under the diurnal cycle (hour 0 = month boundaries).
    pub fn rate_at(&self, t: f64) -> f64 {
        let hours = t * 30.0 * 24.0;
        let phase = (hours.rem_euclid(24.0)) / 24.0;
        self.packets_per_sec
            * (1.0 - self.diurnal_amplitude * (2.0 * std::f64::consts::PI * phase).cos())
    }

    /// Whether `ip` is one of the allocated addresses inside the darkspace
    /// rooted at `darkspace_octet`.
    pub fn is_allocated(&self, ip: Ip4, darkspace_octet: u8) -> bool {
        (ip.0 >> 24) as u8 == darkspace_octet
            && (ip.0 & 0x00FF_FFFF) < self.n_allocated
    }
}

/// An endless packet stream at a fixed world instant.
pub struct PacketStream<'a, R: Rng> {
    population: &'a SourcePopulation,
    active: Vec<usize>,
    alias: AliasTable,
    cfg: TrafficConfig,
    darkspace_octet: u8,
    effective_rate: f64,
    ts_micros: f64,
    rng: R,
}

impl<'a, R: Rng> PacketStream<'a, R> {
    /// Open a stream for the population state at instant `t` (months),
    /// conditioned on the scenario's primary darkspace. `start_micros`
    /// seeds the timestamp clock.
    ///
    /// # Panics
    /// Panics if no source is active at `t`.
    pub fn at_instant(
        population: &'a SourcePopulation,
        t: f64,
        cfg: TrafficConfig,
        start_micros: u64,
        rng: R,
    ) -> Self {
        Self::at_instant_toward(
            population,
            t,
            cfg,
            population.config.darkspace_octet,
            start_micros,
            rng,
        )
    }

    /// Open a stream conditioned on an arbitrary observed /8 — the view a
    /// *second* observatory at `darkspace_octet` would capture of the same
    /// world. Scanners and backscatter spray the whole address space, so
    /// they reach every observatory; botnet rally points and misconfigured
    /// targets are per-(source, prefix), so each darkspace sees its own
    /// slice of that traffic.
    ///
    /// # Panics
    /// Panics if no source is active at `t`.
    pub fn at_instant_toward(
        population: &'a SourcePopulation,
        t: f64,
        cfg: TrafficConfig,
        darkspace_octet: u8,
        start_micros: u64,
        rng: R,
    ) -> Self {
        let active = population.active_at(t);
        assert!(!active.is_empty(), "no active sources at t = {t}");
        let weights: Vec<f64> =
            active.iter().map(|&i| population.sources[i].brightness).collect();
        let alias = AliasTable::new(&weights);
        let effective_rate = cfg.rate_at(t);
        Self {
            population,
            active,
            alias,
            cfg,
            darkspace_octet,
            effective_rate,
            ts_micros: start_micros as f64,
            rng,
        }
    }

    /// Number of sources feeding the stream.
    pub fn active_sources(&self) -> usize {
        self.active.len()
    }

    fn advance_clock(&mut self) -> u64 {
        // Exponential inter-arrival at the aggregate rate.
        let u: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        let dt_sec = -u.ln() / self.effective_rate;
        self.ts_micros += dt_sec * 1e6;
        self.ts_micros as u64
    }

    /// A class-dependent destination inside the darkspace /8.
    fn darkspace_dst(&mut self, class: SourceClass, src: Ip4) -> Ip4 {
        let base = (self.darkspace_octet as u32) << 24;
        let host = match class {
            // Scanners and backscatter spray across the whole space.
            SourceClass::Scanner | SourceClass::Backscatter => {
                self.rng.random_range(0..1u32 << 24)
            }
            // Botnet nodes revisit a handful of per-source rally points.
            SourceClass::Botnet => {
                let which = self.rng.random_range(0u32..4);
                splitmix(src.0 ^ which.wrapping_mul(0x9E37_79B9)) & 0x00FF_FFFF
            }
            // Misconfigurations hammer one fixed mistyped address.
            SourceClass::Misconfig => splitmix(src.0) & 0x00FF_FFFF,
        };
        Ip4(base | host)
    }

    fn legit_packet(&mut self) -> Packet {
        let ts = self.advance_clock();
        // Legitimate clients talk to the allocated addresses.
        let dst = Ip4(((self.darkspace_octet as u32) << 24)
            | self.rng.random_range(0..self.cfg.n_allocated.max(1)));
        let src = Ip4(self.rng.random::<u32>() | 0x0100_0000); // arbitrary external
        Packet {
            ts_micros: ts,
            src,
            dst,
            proto: Protocol::Tcp,
            src_port: self.rng.random_range(1024..u16::MAX),
            dst_port: 443,
            length: 500,
        }
    }
}

/// A 32-bit splitmix-style hash for stable per-source destinations.
fn splitmix(x: u32) -> u32 {
    let mut z = x.wrapping_add(0x9E37_79B9);
    z = (z ^ (z >> 16)).wrapping_mul(0x85EB_CA6B);
    z = (z ^ (z >> 13)).wrapping_mul(0xC2B2_AE35);
    z ^ (z >> 16)
}

impl<'a, R: Rng> Iterator for PacketStream<'a, R> {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.rng.random::<f64>() < self.cfg.legit_fraction {
            return Some(self.legit_packet());
        }
        let source = &self.population.sources[self.active[self.alias.sample(&mut self.rng)]];
        let ts = self.advance_clock();
        let proto = source.class.sample_protocol(&mut self.rng);
        let dst = self.darkspace_dst(source.class, source.ip);
        Some(Packet {
            ts_micros: ts,
            src: source.ip,
            dst,
            proto,
            src_port: source.class.sample_src_port(proto, &mut self.rng),
            dst_port: source.class.sample_dst_port(proto, &mut self.rng),
            length: 40,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{PopulationConfig, SourcePopulation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> SourcePopulation {
        SourcePopulation::generate(PopulationConfig {
            n_sources: 20_000,
            seed: 7,
            ..PopulationConfig::default()
        })
    }

    fn stream(pop: &SourcePopulation) -> PacketStream<'_, StdRng> {
        PacketStream::at_instant(
            pop,
            7.0,
            TrafficConfig::default(),
            1_000_000,
            StdRng::seed_from_u64(99),
        )
    }

    #[test]
    fn packets_target_the_darkspace() {
        let pop = world();
        let mut s = stream(&pop);
        for _ in 0..5_000 {
            let p = s.next().unwrap();
            assert_eq!((p.dst.0 >> 24) as u8, 44, "dst {} outside darkspace", p.dst);
        }
    }

    #[test]
    fn timestamps_are_monotone_and_rate_consistent() {
        let pop = world();
        let mut s = stream(&pop);
        let n = 100_000;
        let first = s.next().unwrap().ts_micros;
        let mut last = first;
        for _ in 0..n {
            let p = s.next().unwrap();
            assert!(p.ts_micros >= last);
            last = p.ts_micros;
        }
        let elapsed_sec = (last - first) as f64 / 1e6;
        let rate = n as f64 / elapsed_sec;
        let expected = TrafficConfig::default().rate_at(7.0);
        assert!(
            (rate - expected).abs() / expected < 0.05,
            "measured rate {rate:.0} pkt/s vs diurnal-adjusted {expected:.0}"
        );
    }

    #[test]
    fn bright_sources_dominate_the_stream() {
        let pop = world();
        let mut s = stream(&pop);
        let mut counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for _ in 0..200_000 {
            let p = s.next().unwrap();
            if !TrafficConfig::default().is_allocated(p.dst, 44) {
                *counts.entry(p.src.0).or_insert(0) += 1;
            }
        }
        // The brightest active source should collect roughly its brightness
        // share of packets.
        let active = pop.active_at(7.0);
        let total: f64 = active.iter().map(|&i| pop.sources[i].brightness).sum();
        let (bi, _) = active
            .iter()
            .map(|&i| (i, pop.sources[i].brightness))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let bright = &pop.sources[bi];
        let expect = bright.brightness / total;
        let got = *counts.get(&bright.ip.0).unwrap_or(&0) as f64 / 200_000.0;
        assert!(
            (got - expect).abs() < expect * 0.2 + 0.001,
            "brightest source share {got:.4} vs expected {expect:.4}"
        );
    }

    #[test]
    fn legit_fraction_hits_allocated_addresses() {
        let pop = world();
        let cfg = TrafficConfig { legit_fraction: 0.2, ..TrafficConfig::default() };
        let mut s =
            PacketStream::at_instant(&pop, 7.0, cfg, 0, StdRng::seed_from_u64(5));
        let n = 20_000;
        let legit =
            (0..n).filter(|_| cfg.is_allocated(s.next().unwrap().dst, 44)).count();
        let frac = legit as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.02, "legit fraction {frac}");
    }

    #[test]
    fn misconfig_sources_have_unit_fanout() {
        let pop = world();
        let mut s = stream(&pop);
        let mut dsts: std::collections::HashMap<u32, std::collections::HashSet<u32>> =
            std::collections::HashMap::new();
        for _ in 0..300_000 {
            let p = s.next().unwrap();
            dsts.entry(p.src.0).or_default().insert(p.dst.0);
        }
        let misconfig_srcs: Vec<&crate::population::Source> = pop
            .sources
            .iter()
            .filter(|x| x.class == SourceClass::Misconfig && dsts.contains_key(&x.ip.0))
            .collect();
        assert!(!misconfig_srcs.is_empty());
        for src in misconfig_srcs {
            assert_eq!(
                dsts[&src.ip.0].len(),
                1,
                "misconfig source {} has fan-out > 1",
                src.ip
            );
        }
    }

    #[test]
    fn diurnal_cycle_modulates_the_rate() {
        let cfg = TrafficConfig::default();
        // Month boundaries are midnight: slowest.
        let midnight = cfg.rate_at(7.0);
        // Half a day later: noon, fastest.
        let noon = cfg.rate_at(7.0 + 0.5 / 30.0);
        assert!((midnight - 0.75e6).abs() < 1e3, "midnight rate {midnight}");
        assert!((noon - 1.25e6).abs() < 1e3, "noon rate {noon}");
        // Zero amplitude disables the cycle.
        let flat = TrafficConfig { diurnal_amplitude: 0.0, ..cfg };
        assert_eq!(flat.rate_at(7.0), 1.0e6);
        assert_eq!(flat.rate_at(7.3), 1.0e6);
        // The cycle is 24-hour periodic.
        let day = 1.0 / 30.0;
        assert!((cfg.rate_at(7.0) - cfg.rate_at(7.0 + day)).abs() < 1e-3);
    }

    #[test]
    fn active_sources_reported() {
        let pop = world();
        let s = stream(&pop);
        assert_eq!(s.active_sources(), pop.active_at(7.0).len());
    }

    #[test]
    #[should_panic(expected = "no active sources")]
    fn dead_world_panics() {
        let pop = world();
        // Far outside the span: nobody is active.
        let _ = PacketStream::at_instant(
            &pop,
            1.0e9,
            TrafficConfig::default(),
            0,
            StdRng::seed_from_u64(1),
        );
    }
}
