//! Doubly-compressed sparse column (DCSC) matrices.
//!
//! The column-oriented twin of [`crate::Csr`]: occupied columns are
//! stored next to their row lists. SuiteSparse GraphBLAS keeps both
//! orientations for hypersparse operands because column-side reductions
//! (destination packets, fan-in) and column extraction are `O(log n)` on
//! DCSC but require a transpose or a sort on DCSR. Built once from a CSR,
//! a [`Dcsc`] answers all of Table II's destination-side quantities
//! directly.

use crate::csr::Csr;
use crate::keypack::pack_key;
use crate::value::Value;
use crate::{Coo, Index};

/// Immutable hypersparse matrix in doubly-compressed sparse *column* form.
///
/// Invariants mirror [`Csr`]: strictly increasing occupied `col_keys`,
/// strictly increasing row indices within each column, no stored zeros.
#[derive(Clone, Debug, PartialEq)]
pub struct Dcsc<V: Value> {
    col_keys: Vec<Index>,
    col_ptr: Vec<usize>,
    row_keys: Vec<Index>,
    vals: Vec<V>,
}

impl<V: Value> Dcsc<V> {
    /// The empty matrix.
    pub fn empty() -> Self {
        Self { col_keys: Vec::new(), col_ptr: vec![0], row_keys: Vec::new(), vals: Vec::new() }
    }

    /// Build from a row-oriented matrix (one sort; `O(nnz log nnz)`).
    pub fn from_csr(a: &Csr<V>) -> Self {
        let mut triples: Vec<(Index, Index, V)> =
            a.iter().map(|(r, c, v)| (c, r, v)).collect();
        triples.sort_unstable_by_key(|&(c, r, _)| pack_key(c, r));
        let mut col_keys = Vec::new();
        let mut col_ptr = vec![0usize];
        let mut row_keys = Vec::with_capacity(triples.len());
        let mut vals = Vec::with_capacity(triples.len());
        for (c, r, v) in triples {
            match col_keys.last() {
                Some(&last) if last == c => {}
                Some(_) => {
                    col_ptr.push(row_keys.len());
                    col_keys.push(c);
                }
                None => col_keys.push(c),
            }
            row_keys.push(r);
            vals.push(v);
        }
        col_ptr.push(row_keys.len());
        if col_keys.is_empty() {
            return Self::empty();
        }
        let dcsc = Self { col_keys, col_ptr, row_keys, vals };
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(msg) = dcsc.check_invariants() {
                // audit:allow(panic-path) — strict-invariants mode aborts on broken invariants by contract
                panic!("CSR→DCSC conversion produced an invalid matrix: {msg}");
            }
        }
        dcsc
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.row_keys.len()
    }

    /// Number of occupied columns — Table II's *unique destinations*.
    pub fn n_cols(&self) -> usize {
        self.col_keys.len()
    }

    /// The sorted occupied column indices.
    pub fn col_keys(&self) -> &[Index] {
        &self.col_keys
    }

    /// The `(rows, values)` slices of the `i`-th occupied column.
    pub fn col_at(&self, i: usize) -> (&[Index], &[V]) {
        let lo = self.col_ptr[i];
        let hi = self.col_ptr[i + 1];
        (&self.row_keys[lo..hi], &self.vals[lo..hi])
    }

    /// Look up a column by matrix index (`O(log n_cols)`).
    pub fn col(&self, col: Index) -> Option<(&[Index], &[V])> {
        let i = self.col_keys.binary_search(&col).ok()?;
        Some(self.col_at(i))
    }

    /// Point lookup `A(row, col)`.
    pub fn get(&self, row: Index, col: Index) -> Option<V> {
        let (rows, vals) = self.col(col)?;
        let j = rows.binary_search(&row).ok()?;
        Some(vals[j])
    }

    /// Destination packets `(j, Σ_i A(i,j))` — Table II, column side,
    /// computed without a transpose.
    pub fn destination_packets(&self) -> Vec<(Index, u64)> {
        (0..self.n_cols())
            .map(|i| {
                let (_, vals) = self.col_at(i);
                (self.col_keys[i], vals.iter().map(|v| v.to_u64()).sum())
            })
            .collect()
    }

    /// Destination fan-in `(j, Σ_i |A(i,j)|_0)`.
    pub fn destination_fan_in(&self) -> Vec<(Index, u64)> {
        (0..self.n_cols())
            .map(|i| (self.col_keys[i], self.col_at(i).0.len() as u64))
            .collect()
    }

    /// Internal consistency check mirroring [`Csr::check_invariants`]:
    /// strictly increasing occupied `col_keys`, monotone *strictly*
    /// increasing `col_ptr` (every stored column is nonempty) with correct
    /// endpoints, strictly increasing row indices within each column, and
    /// no explicit zeros. Used by tests and the pipeline's
    /// `strict-invariants` stage checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.col_ptr.len() != self.col_keys.len() + 1 {
            return Err("col_ptr length mismatch".into());
        }
        if self.col_ptr.first().copied() != Some(0)
            || self.col_ptr.last().copied() != Some(self.row_keys.len())
        {
            return Err("col_ptr endpoints wrong".into());
        }
        if self.row_keys.len() != self.vals.len() {
            return Err("row_keys/vals length mismatch".into());
        }
        for w in self.col_keys.windows(2) {
            if w[0] >= w[1] {
                return Err("col_keys not strictly increasing".into());
            }
        }
        for (i, w) in self.col_ptr.windows(2).enumerate() {
            if w[0] >= w[1] {
                return Err(format!("stored column {i} is empty (col_ptr not strictly increasing)"));
            }
            for pair in self.row_keys[w[0]..w[1]].windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!("row indices not strictly increasing in column {i}"));
                }
            }
        }
        if self.vals.iter().any(|v| v.is_zero()) {
            return Err("explicit zero stored".into());
        }
        Ok(())
    }

    /// Convert back to row orientation.
    pub fn to_csr(&self) -> Csr<V> {
        let mut coo = Coo::with_capacity(self.nnz());
        for i in 0..self.n_cols() {
            let c = self.col_keys[i];
            let (rows, vals) = self.col_at(i);
            for (&r, &v) in rows.iter().zip(vals) {
                coo.push(r, c, v);
            }
        }
        coo.into_csr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reduce;

    fn sample() -> Csr<u64> {
        Coo::from_triples(vec![
            (1u32, 7u32, 5u64),
            (1, 8, 1),
            (2, 7, 4),
            (9, 9, 2),
            (u32::MAX, 7, 1),
        ])
        .into_csr()
    }

    #[test]
    fn round_trip_csr_dcsc_csr() {
        let a = sample();
        let d = Dcsc::from_csr(&a);
        assert_eq!(d.to_csr(), a);
        assert_eq!(d.nnz(), a.nnz());
    }

    #[test]
    fn column_access() {
        let d = Dcsc::from_csr(&sample());
        assert_eq!(d.n_cols(), 3);
        assert_eq!(d.col_keys(), &[7, 8, 9]);
        let (rows, vals) = d.col(7).unwrap();
        assert_eq!(rows, &[1, 2, u32::MAX]);
        assert_eq!(vals, &[5, 4, 1]);
        assert!(d.col(6).is_none());
        assert_eq!(d.get(2, 7), Some(4));
        assert_eq!(d.get(3, 7), None);
    }

    #[test]
    fn destination_quantities_match_row_side_reductions() {
        let a = sample();
        let d = Dcsc::from_csr(&a);
        assert_eq!(d.destination_packets(), reduce::destination_packets(&a));
        assert_eq!(d.destination_fan_in(), reduce::destination_fan_in(&a));
        assert_eq!(d.n_cols() as u64, reduce::unique_destinations(&a));
    }

    #[test]
    fn empty_matrix() {
        let d = Dcsc::from_csr(&Csr::<u64>::empty());
        assert_eq!(d.nnz(), 0);
        assert_eq!(d.n_cols(), 0);
        assert_eq!(d.to_csr(), Csr::empty());
        assert_eq!(d, Dcsc::empty());
    }

    #[test]
    fn matches_transpose_view() {
        let a = sample();
        let d = Dcsc::from_csr(&a);
        let t = a.transpose();
        // The DCSC of A has the same layout as the CSR of A'.
        assert_eq!(d.col_keys(), t.row_keys());
        for (i, &c) in d.col_keys().iter().enumerate() {
            let (rows, vals) = d.col_at(i);
            let (t_cols, t_vals) = t.row(c).unwrap();
            assert_eq!(rows, t_cols);
            assert_eq!(vals, t_vals);
        }
    }
}
