//! D4M-style associative arrays.
//!
//! The paper stores the GreyNoise honeyfarm observations — string source
//! IPs against string metadata columns — in D4M associative arrays
//! (`A_t('1.1.1.1', '2.2.2.2') = '3'`), and converts reduced GraphBLAS
//! results into the same representation to correlate the two data sets.
//!
//! An associative array is a sparse matrix whose rows and columns are
//! indexed by *sorted string keys* instead of integers, closed under the
//! usual set-algebraic operations:
//!
//! * sub-array selection by key set, prefix, or range ([`Assoc::rows`],
//!   [`Assoc::cols`], [`Assoc::rows_with_prefix`]),
//! * element-wise intersection/union combine ([`Assoc::and_then`],
//!   [`Assoc::or_else`]),
//! * transpose, and
//! * row-key set algebra across arrays ([`keys::KeySet`]), which is the
//!   operation behind every correlation number in the paper: *"what
//!   fraction of CAIDA sources also appear in the GreyNoise rows?"*
//!
//! ```
//! use obscor_assoc::Assoc;
//!
//! let gn = Assoc::from_triples_last(vec![
//!     ("1.2.3.4".into(), "class".into(), "scanner".to_string()),
//!     ("1.2.3.4".into(), "first_seen".into(), "2020-06".to_string()),
//!     ("9.9.9.9".into(), "class".into(), "benign".to_string()),
//! ]);
//! assert_eq!(gn.get("1.2.3.4", "class"), Some(&"scanner".to_string()));
//! assert_eq!(gn.n_rows(), 2);
//! ```

pub mod array;
pub mod bitset;
pub mod convert;
pub mod io;
pub mod keys;

pub use array::Assoc;
pub use bitset::{BitSet, MonthMatrix};
pub use keys::{KeySet, NumKeySet};

/// Associative array with `f64` values (the D4M numeric convention).
pub type NumAssoc = Assoc<f64>;
/// Associative array with string values (the D4M metadata convention).
pub type StrAssoc = Assoc<String>;
