//! Every public constructor of the hypersparse types produces a value
//! satisfying `check_invariants`. The `cargo xtask audit` invariant-coverage
//! rule requires each constructor to appear, by name, in a test that calls
//! `check_invariants` — this file is that coverage, plus property tests
//! asserting the invariants survive the format round-trips the pipeline
//! performs (COO → CSR, CSR ↔ DCSC, transpose).

use obscor_hypersparse::reduce::NetworkQuantities;
use obscor_hypersparse::{Coo, Csr, Dcsc, HierarchicalAccumulator, Index, StreamingBuilder};
use proptest::prelude::*;

fn sample_triples() -> Vec<(Index, Index, u64)> {
    vec![(3, 9, 2), (0, 1, 5), (3, 9, 1), (7, 0, 4), (0, 1, 3)]
}

#[test]
fn coo_new_satisfies_invariants() {
    let coo = Coo::<u64>::new();
    assert!(coo.check_invariants().is_ok());
}

#[test]
fn coo_with_capacity_satisfies_invariants() {
    let coo = Coo::<u64>::with_capacity(1024);
    assert!(coo.check_invariants().is_ok());
}

#[test]
fn coo_from_triples_satisfies_invariants() {
    let coo = Coo::from_triples(sample_triples());
    assert!(coo.check_invariants().is_ok());
}

#[test]
fn csr_empty_satisfies_invariants() {
    assert!(Csr::<u64>::empty().check_invariants().is_ok());
}

#[test]
fn csr_from_compaction_satisfies_invariants() {
    let csr = Coo::from_triples(sample_triples()).into_csr();
    assert!(csr.check_invariants().is_ok());
}

#[test]
fn dcsc_empty_satisfies_invariants() {
    assert!(Dcsc::<u64>::empty().check_invariants().is_ok());
}

#[test]
fn dcsc_from_csr_satisfies_invariants() {
    let csr = Coo::from_triples(sample_triples()).into_csr();
    let dcsc = Dcsc::from_csr(&csr);
    assert!(dcsc.check_invariants().is_ok());
}

#[test]
fn accumulator_new_satisfies_invariants() {
    let acc = HierarchicalAccumulator::<u64>::new();
    assert!(acc.check_invariants().is_ok());
}

#[test]
fn accumulator_with_leaf_capacity_satisfies_invariants_throughout() {
    let mut acc = HierarchicalAccumulator::<u64>::with_leaf_capacity(4);
    for (r, c, v) in sample_triples() {
        acc.push(r, c, v);
        assert!(acc.check_invariants().is_ok());
    }
    assert!(acc.finalize().check_invariants().is_ok());
}

#[test]
fn streaming_builder_new_satisfies_invariants() {
    let mut b = StreamingBuilder::<u64>::new(2, 64, 4);
    assert!(b.check_invariants().is_ok());
    b.send_batch(sample_triples());
    assert!(b.check_invariants().is_ok());
    assert!(b.finish().check_invariants().is_ok());
}

#[test]
fn network_quantities_compute_satisfies_invariants() {
    let csr = Coo::from_triples(sample_triples()).into_csr();
    let q = NetworkQuantities::compute(&csr);
    assert!(q.check_invariants().is_ok());
    assert!(NetworkQuantities::compute(&Csr::<u64>::empty()).check_invariants().is_ok());
}

fn arb_triples() -> impl Strategy<Value = Vec<(Index, Index, u64)>> {
    prop::collection::vec((0u32..500, 0u32..500, 0u64..8), 0..300)
}

proptest! {
    /// COO → CSR compaction always lands in the invariant set, via both the
    /// serial and the parallel path.
    #[test]
    fn compaction_preserves_invariants(t in arb_triples()) {
        let coo = Coo::from_triples(t.iter().copied());
        prop_assert!(coo.check_invariants().is_ok());
        prop_assert!(Coo::from_triples(t.iter().copied()).into_csr_serial().check_invariants().is_ok());
        prop_assert!(Coo::from_triples(t.iter().copied()).into_csr_parallel().check_invariants().is_ok());
    }

    /// CSR → DCSC → CSR round-trips stay inside the invariant set at every
    /// step.
    #[test]
    fn dcsc_round_trip_preserves_invariants(t in arb_triples()) {
        let a = Coo::from_triples(t).into_csr();
        let d = Dcsc::from_csr(&a);
        prop_assert!(d.check_invariants().is_ok());
        let back = d.to_csr();
        prop_assert!(back.check_invariants().is_ok());
        prop_assert_eq!(back, a);
    }

    /// Transposition maps the invariant set into itself, and the round trip
    /// is the identity.
    #[test]
    fn transpose_preserves_invariants(t in arb_triples()) {
        let a = Coo::from_triples(t).into_csr();
        let tr = a.transpose();
        prop_assert!(tr.check_invariants().is_ok());
        prop_assert!(tr.transpose().check_invariants().is_ok());
        prop_assert_eq!(tr.transpose(), a);
    }

    /// Hierarchical accumulation (any leaf size) produces an invariant-
    /// satisfying matrix with consistent merge counters.
    #[test]
    fn accumulation_preserves_invariants(t in arb_triples(), leaf in 1usize..32) {
        let mut acc = HierarchicalAccumulator::with_leaf_capacity(leaf);
        acc.extend(t.iter().copied());
        prop_assert!(acc.check_invariants().is_ok());
        prop_assert!(acc.finalize().check_invariants().is_ok());
    }

    /// Table II aggregates of any constructed matrix obey their order
    /// relations.
    #[test]
    fn computed_quantities_satisfy_order_relations(t in arb_triples()) {
        let a = Coo::from_triples(t).into_csr();
        prop_assert!(NetworkQuantities::compute(&a).check_invariants().is_ok());
    }
}
