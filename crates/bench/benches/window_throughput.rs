//! Substrate bench: synthetic packet generation, windowing, the libpcap
//! codec at capture rates — and the window-ingest fast-path report.
//!
//! Before the criterion benches run, this binary times each ingest
//! fast path against the differential oracle it replaced (serial sort
//! compaction vs the radix kernel, uncached CryptoPAN vs the memoized
//! prefix table, string key sets vs numeric key sets) and writes the
//! comparison — plus sustained `telescope::stream` throughput rows at
//! several worker counts and the out-of-core fold's cost with its
//! per-level merge timings — as `BENCH_ingest.json` (schema
//! `obscor.bench.ingest.v4`, path override `OBSCOR_BENCH_INGEST_OUT`) —
//! the before/after record DESIGN.md §12/§15/§16/§17 and CI's
//! bench-smoke step point at.
//!
//! v4 adds the compressed-bitmap rows (`overlap_fraction_numeric_vs_
//! bitmap` at fixture scale, `overlap_count_numeric_vs_bitmap_dense` and
//! `temporal_sweep_pairwise_vs_month_matrix` at paper density) and a
//! top-level `host_cpus` field so the streaming worker-scaling rows can
//! be read against the parallelism the box actually had (DESIGN.md §15).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use obscor_anonymize::{CryptoPan, MemoCryptoPan};
use obscor_assoc::{BitSet, MonthMatrix, NumKeySet};
use obscor_bench::fixture;
use obscor_hypersparse::{Coo, Index};
use obscor_netmodel::{PacketStream, TrafficConfig};
use obscor_pcap::{AcceptAll, ConstantPacketWindower, PcapReader, PcapWriter};
use obscor_telescope::{capture_window, matrix, IngestConfig, IngestService};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

const INGEST_KEY: [u8; 32] = [0x5Au8; 32];
const INGEST_REPS: usize = 3;

/// One before/after row of the ingest report.
struct Comparison {
    name: &'static str,
    baseline_ns: u64,
    fast_ns: u64,
}

impl Comparison {
    fn speedup(&self) -> f64 {
        self.baseline_ns as f64 / (self.fast_ns.max(1)) as f64
    }
}

/// One sustained-throughput row of the streaming section.
struct StreamingRow {
    workers: usize,
    queue_depth: usize,
    window_packets: usize,
    median_ns: u64,
    packets_per_sec: f64,
}

/// Accumulated merge timing of one carry level of the out-of-core fold.
struct SpillLevelRow {
    level: usize,
    calls: u64,
    total_ns: u64,
}

/// Median of `reps` timed runs of `f` (wall-clock, via the obs stopwatch).
fn median_ns<R>(reps: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut times: Vec<u64> = (0..reps)
        .map(|_| {
            let (out, ns) = obscor_obs::time_fn(&mut f);
            black_box(out);
            ns
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Time the ingest fast paths against their oracles and write the report.
fn ingest_report(n_v: usize, seed: u64) {
    let f = fixture(n_v, seed);
    let w = capture_window(&f.scenario, &f.scenario.caida_windows[0]);

    // 1. Triple compaction: serial sort-and-dedup vs the radix kernel.
    let triples: Vec<(Index, Index, u64)> =
        w.window.packets.iter().map(|p| (p.src.0, p.dst.0, 1u64)).collect();
    let proto = Coo::from_triples(triples);
    let compaction = Comparison {
        name: "compaction_serial_vs_radix",
        baseline_ns: median_ns(INGEST_REPS, || proto.clone().into_csr_serial()),
        fast_ns: median_ns(INGEST_REPS, || proto.clone().into_csr_radix()),
    };

    // 2. CryptoPAN: 32-AES scalar vs the 16-AES prefix-table path,
    //    scalar and batched, on the window's source addresses (with the
    //    natural duplicate structure of real ingest).
    let addrs: Vec<u32> = w.window.packets.iter().map(|p| p.src.0).collect();
    let uncached = CryptoPan::new(&INGEST_KEY);
    let (memo, table_build_ns) = obscor_obs::time_fn(|| MemoCryptoPan::new(&INGEST_KEY));
    let scalar_baseline_ns = median_ns(INGEST_REPS, || {
        addrs.iter().map(|&a| u64::from(uncached.anonymize(a))).sum::<u64>()
    });
    let cryptopan_scalar = Comparison {
        name: "cryptopan_uncached_vs_memo_scalar",
        baseline_ns: scalar_baseline_ns,
        fast_ns: median_ns(INGEST_REPS, || {
            addrs.iter().map(|&a| u64::from(memo.anonymize(a))).sum::<u64>()
        }),
    };
    let cryptopan_batched = Comparison {
        name: "cryptopan_uncached_vs_memo_batched",
        baseline_ns: scalar_baseline_ns,
        fast_ns: median_ns(INGEST_REPS, || {
            let mut out = addrs.clone();
            memo.anonymize_slice(&mut out);
            out
        }),
    };

    // 3. End-to-end anonymized matrix build, uncached vs memoized.
    let matrix_build = Comparison {
        name: "anonymized_matrix_uncached_vs_memo",
        baseline_ns: median_ns(INGEST_REPS, || matrix::build_anonymized_matrix(&w, &uncached)),
        fast_ns: median_ns(INGEST_REPS, || matrix::build_anonymized_matrix_memo(&w, &memo)),
    };

    // 4. Correlation set ops: string key sets vs numeric key sets on the
    //    first window's sources against its coeval honeyfarm month.
    let wd = &f.degrees[0];
    let month = &f.monthly_sources[wd.month];
    let str_keys = wd.key_set();
    let num_keys = wd.ip_set();
    let num_month = NumKeySet::from_key_set(month).expect("monthly keys are dotted quads");
    let overlap = Comparison {
        name: "overlap_fraction_string_vs_numeric",
        baseline_ns: median_ns(INGEST_REPS, || str_keys.overlap_fraction(month)),
        fast_ns: median_ns(INGEST_REPS, || num_keys.overlap_fraction(&num_month)),
    };

    // 4b. Compressed bitmap substrate at fixture scale: the same window
    //     sources against the same coeval month, sorted-vec merge walk vs
    //     roaring-container popcounts. Fixture sets at N_V = 2^16 are
    //     sparse (array containers), so this row shows the small-set
    //     behaviour honestly; the paper-density rows below show the
    //     regime the substrate is built for.
    let bit_keys = BitSet::from_num_key_set(&num_keys);
    let bit_month = BitSet::from_num_key_set(&num_month);
    assert_eq!(
        bit_keys.overlap_fraction(&bit_month),
        num_keys.overlap_fraction(&num_month),
        "bitmap overlap must be bit-identical to the numeric path"
    );
    let overlap_bitmap = Comparison {
        name: "overlap_fraction_numeric_vs_bitmap",
        baseline_ns: median_ns(INGEST_REPS, || num_keys.overlap_fraction(&num_month)),
        fast_ns: median_ns(INGEST_REPS, || bit_keys.overlap_fraction(&bit_month)),
    };

    // 4c. Paper-density set ops: ~2^21 draws from a 2^24 address space
    //     give ~8K keys per 2^16 chunk — the bitmap-container regime of
    //     the paper's full observatory months — where the merge walk
    //     touches every key but the word-parallel path popcounts 64 at a
    //     time. The temporal row sweeps all months in one merge-join of
    //     the probe's chunks (the `MonthMatrix` one-sweep algorithm)
    //     against the month-at-a-time pairwise walks it replaced.
    let mut dense_rng = StdRng::seed_from_u64(seed ^ 0x0b17);
    let mut dense_set = || {
        NumKeySet::from_iter(
            (0..1u32 << 21).map(|_| dense_rng.random_range(0u32..1 << 24)),
        )
    };
    let dense_a = dense_set();
    let dense_b = dense_set();
    let dense_months: Vec<NumKeySet> = (0..15).map(|_| dense_set()).collect();
    let dense_bit_a = BitSet::from_num_key_set(&dense_a);
    let dense_bit_b = BitSet::from_num_key_set(&dense_b);
    let dense_matrix = MonthMatrix::from_months(&dense_months);
    assert_eq!(
        dense_bit_a.overlap_count(&dense_bit_b),
        dense_a.overlap_count(&dense_b),
        "dense bitmap overlap must be bit-identical to the numeric path"
    );
    let sweep_counts = dense_matrix.overlap_counts(&dense_bit_a);
    for (m, month) in dense_months.iter().enumerate() {
        assert_eq!(
            sweep_counts[m],
            dense_a.overlap_count(month),
            "one-sweep month counts must be bit-identical to pairwise"
        );
    }
    let overlap_dense = Comparison {
        name: "overlap_count_numeric_vs_bitmap_dense",
        baseline_ns: median_ns(INGEST_REPS, || dense_a.overlap_count(&dense_b)),
        fast_ns: median_ns(INGEST_REPS, || dense_bit_a.overlap_count(&dense_bit_b)),
    };
    let temporal_sweep = Comparison {
        name: "temporal_sweep_pairwise_vs_month_matrix",
        baseline_ns: median_ns(INGEST_REPS, || {
            dense_months
                .iter()
                .map(|month| dense_a.overlap_count(month))
                .sum::<usize>()
        }),
        fast_ns: median_ns(INGEST_REPS, || {
            dense_matrix.overlap_counts(&dense_bit_a).iter().sum::<usize>()
        }),
    };

    let comparisons = [
        compaction,
        cryptopan_scalar,
        cryptopan_batched,
        matrix_build,
        overlap,
        overlap_bitmap,
        overlap_dense,
        temporal_sweep,
    ];

    // 5. Sustained streaming throughput: the same captured window pushed
    //    through the `telescope::stream` service at several worker
    //    counts, as packets/sec over the median wall-clock of a full
    //    window (push → shard → compact → fold → snapshot → drain).
    let coords: Vec<(u32, u32)> =
        w.window.packets.iter().map(|p| (p.src.0, p.dst.0)).collect();
    let streaming: Vec<StreamingRow> = [1usize, 2, 4, 8]
        .iter()
        .map(|&workers| {
            let cfg = IngestConfig::new(workers, coords.len());
            let median = median_ns(INGEST_REPS, || {
                let mut svc = IngestService::new(cfg.clone());
                svc.push_pairs(&coords);
                let (snaps, drain) = svc.finish();
                assert!(drain.is_exact(), "bench drain must be exact");
                snaps
            });
            StreamingRow {
                workers,
                queue_depth: cfg.queue_depth,
                window_packets: coords.len(),
                median_ns: median,
                packets_per_sec: coords.len() as f64 * 1e9 / median.max(1) as f64,
            }
        })
        .collect();

    // 6. Out-of-core fold (DESIGN.md §16): the same window built through
    //    the spill scheduler under a zero budget (every carry evicted to
    //    a real temp directory — the fully out-of-core worst case)
    //    against the plain in-memory build, with the per-level merge
    //    timings the spill spans record while enabled.
    obscor_hypersparse::spill::enable_spill_metrics();
    let ooc_baseline_ns = median_ns(INGEST_REPS, || matrix::build_matrix(&w));
    let mut spill_stats = obscor_hypersparse::SpillStats::default();
    let before = obscor_obs::snapshot();
    let ooc_spilled_ns = median_ns(INGEST_REPS, || {
        let (m, report) =
            matrix::build_matrix_spilled(&w, Some(0), None).expect("temp spill dir");
        assert!(report.is_exact(), "bench spill fold must be exact");
        spill_stats = report.stats;
        m
    });
    let spill_delta = obscor_obs::snapshot().delta_since(&before);
    let mut spill_levels: Vec<SpillLevelRow> = spill_delta
        .counters
        .iter()
        .filter_map(|(name, &calls)| {
            let level = name
                .strip_prefix("span.hypersparse.spill.merge.level")?
                .strip_suffix(".calls_total")?;
            let ns = spill_delta
                .histograms
                .get(&format!("span.hypersparse.spill.merge.level{level}.ns"))?;
            Some(SpillLevelRow { level: level.parse().ok()?, calls, total_ns: ns.sum })
        })
        .collect();
    spill_levels.sort_by_key(|r| r.level);
    let out_of_core = Comparison {
        name: "window_fold_in_memory_vs_spilled",
        baseline_ns: ooc_baseline_ns,
        fast_ns: ooc_spilled_ns,
    };

    let host_cpus = std::thread::available_parallelism().map_or(0, usize::from);
    eprintln!("\n=== WINDOW INGEST FAST PATH (N_V = {n_v}, host_cpus = {host_cpus}) ===");
    eprintln!("memo_table_build {table_build_ns} ns");
    for c in &comparisons {
        eprintln!(
            "{:<38} baseline {:>12} ns  fast {:>12} ns  speedup {:>7.2}x",
            c.name,
            c.baseline_ns,
            c.fast_ns,
            c.speedup()
        );
    }
    for r in &streaming {
        eprintln!(
            "streaming workers={} depth={}            median {:>12} ns  {:>12.0} packets/sec",
            r.workers, r.queue_depth, r.median_ns, r.packets_per_sec
        );
    }
    eprintln!(
        "{:<38} baseline {:>12} ns  fast {:>12} ns  speedup {:>7.2}x",
        out_of_core.name,
        out_of_core.baseline_ns,
        out_of_core.fast_ns,
        out_of_core.speedup()
    );
    for r in &spill_levels {
        eprintln!(
            "spill merge level{}                      calls {:>12}      {:>12} ns total",
            r.level, r.calls, r.total_ns
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"obscor.bench.ingest.v4\",\n");
    json.push_str(&format!("  \"n_v\": {n_v},\n"));
    json.push_str(&format!("  \"reps\": {INGEST_REPS},\n"));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!("  \"memo_table_build_ns\": {table_build_ns},\n"));
    json.push_str("  \"comparisons\": [\n");
    for (i, c) in comparisons.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ns\": {}, \"fast_ns\": {}, \"speedup\": {:.3}}}{}\n",
            c.name,
            c.baseline_ns,
            c.fast_ns,
            c.speedup(),
            if i + 1 < comparisons.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"streaming\": [\n");
    for (i, r) in streaming.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"queue_depth\": {}, \"window_packets\": {}, \"median_ns\": {}, \"packets_per_sec\": {:.0}}}{}\n",
            r.workers,
            r.queue_depth,
            r.window_packets,
            r.median_ns,
            r.packets_per_sec,
            if i + 1 < streaming.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str("  \"out_of_core\": {\n");
    json.push_str("    \"budget\": 0,\n");
    json.push_str(&format!(
        "    \"in_memory_ns\": {}, \"spilled_ns\": {}, \"relative_cost\": {:.3},\n",
        out_of_core.baseline_ns,
        out_of_core.fast_ns,
        out_of_core.fast_ns as f64 / out_of_core.baseline_ns.max(1) as f64
    ));
    json.push_str(&format!(
        "    \"evictions\": {}, \"reloads\": {}, \"peak_live_bytes\": {},\n",
        spill_stats.evictions, spill_stats.reloads, spill_stats.peak_live_bytes
    ));
    json.push_str("    \"merge_levels\": [\n");
    for (i, r) in spill_levels.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"level\": {}, \"calls\": {}, \"total_ns\": {}}}{}\n",
            r.level,
            r.calls,
            r.total_ns,
            if i + 1 < spill_levels.len() { "," } else { "" }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    let out = std::env::var("OBSCOR_BENCH_INGEST_OUT")
        .unwrap_or_else(|_| "BENCH_ingest.json".to_string());
    std::fs::write(&out, &json).expect("write ingest fast-path report");
    eprintln!("ingest report -> {out}");
}

fn bench(c: &mut Criterion) {
    let f = fixture(1 << 16, 42);
    let scenario = &f.scenario;

    ingest_report(1 << 16, 42);

    let mut g = c.benchmark_group("window_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(scenario.n_v as u64));

    g.bench_function("packet_generation_raw", |b| {
        b.iter(|| {
            let rng = StdRng::seed_from_u64(1);
            let stream = PacketStream::at_instant(
                &scenario.population,
                7.0,
                TrafficConfig::default(),
                0,
                rng,
            );
            let count = stream.take(scenario.n_v).count();
            black_box(count)
        })
    });

    g.bench_function("windower", |b| {
        b.iter(|| {
            let rng = StdRng::seed_from_u64(1);
            let stream = PacketStream::at_instant(
                &scenario.population,
                7.0,
                TrafficConfig::default(),
                0,
                rng,
            );
            let mut w = ConstantPacketWindower::new(stream, AcceptAll, scenario.n_v);
            black_box(w.next())
        })
    });

    g.bench_function("capture_window_end_to_end", |b| {
        b.iter(|| black_box(capture_window(scenario, &scenario.caida_windows[0])))
    });

    let w = capture_window(scenario, &scenario.caida_windows[0]);
    g.bench_function("pcap_write", |b| {
        b.iter(|| {
            let mut writer = PcapWriter::new();
            for p in &w.window.packets {
                writer.write_packet(p);
            }
            black_box(writer.into_bytes())
        })
    });
    let bytes = {
        let mut writer = PcapWriter::new();
        for p in &w.window.packets {
            writer.write_packet(p);
        }
        writer.into_bytes()
    };
    g.bench_function("pcap_parse_and_verify_checksums", |b| {
        b.iter(|| black_box(PcapReader::new(&bytes).unwrap().read_all().unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
