//! Clean-fixture proof that `word-bit-manip` exempts the bitset module:
//! the very patterns the rule flags elsewhere are the substrate's home
//! idiom here.

pub fn set_bit(words: &mut [u64], key: u16) {
    words[usize::from(key >> 6)] |= 1u64 << (key & 63);
}

pub fn overlap(a: &[u64], b: &[u64]) -> u32 {
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
}
