//! Pipeline observability: a dependency-free metrics layer for the whole
//! workspace.
//!
//! The paper this repository reproduces is fundamentally a performance
//! paper — insert rates and stage costs are headline results — so every
//! pipeline stage records what it does through this crate:
//!
//! * [`Counter`] — monotonic event counts (`stage.capture.packets_total`)
//! * [`Gauge`] — instantaneous values (`config.window_count`)
//! * [`Histogram`] — log2-bucketed distributions (durations, batch sizes)
//! * [`SpanTimer`] — RAII wall-clock spans; dropping one records
//!   `span.<name>.ns` (histogram) and `span.<name>.calls_total` (counter)
//!
//! All metrics live in a process-global [`Registry`] (lock-free to update,
//! locked only on name lookup) and can be frozen into a
//! [`MetricsSnapshot`], which serializes to the stable `obscor.metrics.v1`
//! JSON schema (see [`snapshot`]) consumed by `obscor --metrics <path>` and
//! the bench crate's `BENCH_pipeline.json`.
//!
//! # Naming scheme
//!
//! Dot-separated lowercase paths, most-general first:
//!
//! * `span.<stage>.ns` / `span.<stage>.calls_total` — reserved for
//!   [`SpanTimer`]; never written directly.
//! * `stage.<stage>.<what>_total` — counters of work done inside a stage.
//! * `hypersparse.<structure>.<what>` — data-structure internals
//!   (leaf compactions, carry merges).
//! * `config.<knob>` — gauges mirroring run configuration.
//!
//! # Scoping a run
//!
//! The global registry lives for the whole process, so a caller that wants
//! metrics for *one* pipeline run (e.g. parallel tests) snapshots before and
//! takes [`MetricsSnapshot::delta_since`] after:
//!
//! ```
//! let before = obscor_obs::snapshot();
//! {
//!     let _span = obscor_obs::span("demo.stage");
//!     obscor_obs::counter("demo.items_total").add(3);
//! }
//! let run = obscor_obs::snapshot().delta_since(&before);
//! assert_eq!(run.counters["demo.items_total"], 3);
//! assert_eq!(run.counters["span.demo.stage.calls_total"], 1);
//! ```
//!
//! This crate is deliberately dependency-free (it sits below every other
//! workspace crate) and is the single sanctioned home of `Instant::now()` —
//! the `instant-timing` rule in `cargo xtask audit` rejects ad-hoc timing
//! elsewhere so measurements cannot bypass the registry.

pub mod fault;
mod json;
pub mod metrics;
pub mod registry;
pub mod snapshot;
pub mod span;

pub use fault::FaultClass;
pub use metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use registry::{global, Registry};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot, SCHEMA};
pub use span::{time_fn, SpanTimer};

use std::sync::Arc;

/// The global counter named `name` (created at zero on first use).
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// The global gauge named `name` (created at zero on first use).
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// The global histogram named `name` (created empty on first use).
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Start an RAII timing span against the global registry.
pub fn span(name: &str) -> SpanTimer {
    SpanTimer::start(name)
}

/// Freeze the current state of the global registry.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}
