// Seeds `panic-in-drop`: a direct `unwrap()` in `Drop for Flusher` and
// a panic two calls away in `Drop for Spool`. The allow-marked drop and
// the non-`Drop` inherent method named `drop` stay silent.

pub fn must_flush(pending: &[u8]) {
    if pending.len() > 4 {
        panic!("flush overflow");
    }
}

pub fn forward_flush(pending: &[u8]) {
    must_flush(pending);
}

pub struct Flusher {
    pub pending: Vec<u8>,
}

impl Drop for Flusher {
    fn drop(&mut self) {
        self.pending.pop().unwrap();
    }
}

pub struct Spool {
    pub pending: Vec<u8>,
}

impl Drop for Spool {
    fn drop(&mut self) {
        forward_flush(&self.pending);
    }
}

pub struct Quiet {
    pub pending: Vec<u8>,
}

impl Drop for Quiet {
    fn drop(&mut self) {
        // audit:allow(panic-in-drop) — fixture: the marker must silence this site
        self.pending.pop().unwrap();
    }
}

pub struct Manual;

impl Manual {
    pub fn drop(&mut self) {
        must_flush(&[]);
    }
}
