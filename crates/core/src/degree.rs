//! Per-window source degrees, via the paper's full data path.
//!
//! The telescope's archive stores CryptoPAN-anonymized matrices; all
//! Table II reductions are permutation-invariant, so the source packet
//! counts are computed on anonymized indices (see
//! `obscor_telescope::matrix` and the workspace property tests for the
//! invariance proofs). To correlate with the honeyfarm the *reduced*
//! source list is then deanonymized through the paper's trusted-sharing
//! workflow 1 — "if the subset is small and the risk is low, then
//! anonymized data can be sent back to the sources for deanonymization.
//! For this work, the first approach was used."

use obscor_anonymize::sharing::Holder;
use obscor_assoc::convert::ip_key;
use obscor_assoc::{BitSet, KeySet, NumKeySet};
use obscor_hypersparse::reduce;
use obscor_netmodel::Scenario;
use obscor_stats::binning::log2_bin;
use obscor_stats::DegreeHistogram;
use obscor_telescope::{capture_window, matrix, TelescopeWindow};
use std::collections::BTreeMap;

/// The reduced, deanonymized degree data of one telescope window.
#[derive(Clone, Debug, PartialEq)]
pub struct WindowDegrees {
    /// Table I window label.
    pub label: String,
    /// Model-time coordinate of the window (months).
    pub coord: f64,
    /// Month index containing the window.
    pub month: usize,
    /// `(real source ip, window packet count d)`, sorted by ip.
    pub degrees: Vec<(u32, u64)>,
}

impl WindowDegrees {
    /// Reduce a captured window: build the hierarchical traffic matrix,
    /// take row sums (source packets), and run the anonymized product
    /// through the send-back deanonymization workflow against `holder`
    /// (the telescope operator's CryptoPAN key).
    pub fn from_window(w: &TelescopeWindow, holder: &Holder, month: usize) -> Self {
        let m = matrix::build_matrix(w);
        Self::from_matrix(&w.label, w.coord, month, &m, holder)
    }

    /// Reduce an already-built traffic matrix (avoids rebuilding when the
    /// caller also needs the matrix for Table II).
    pub fn from_matrix(
        label: &str,
        coord: f64,
        month: usize,
        m: &obscor_hypersparse::Csr<u64>,
        holder: &Holder,
    ) -> Self {
        let _span = obscor_obs::span("core.degrees");
        let reduced = reduce::source_packets_auto(m);
        obscor_obs::counter("core.degrees.sources_total").add(reduced.len() as u64);
        // The archive publishes the reduced product anonymized...
        let real_ips: Vec<u32> = reduced.iter().map(|&(ip, _)| ip).collect();
        let anon_ips = holder.publish(&real_ips);
        // ...and the researcher sends it back for deanonymization
        // (workflow 1; the subset is the per-window source list).
        let returned = holder
            .deanonymize_subset(&anon_ips, anon_ips.len())
            // audit:allow(panic-path) — the cap equals the subset size by construction (workflow 1 contract)
            .expect("send-back within agreed cap");
        let mut degrees: Vec<(u32, u64)> = returned
            .into_iter()
            .zip(reduced.into_iter().map(|(_, d)| d))
            .collect();
        degrees.sort_unstable();
        Self { label: label.to_string(), coord, month, degrees }
    }

    /// Capture + build + reduce one scenario window end to end.
    pub fn capture(scenario: &Scenario, window_index: usize, holder: &Holder) -> Self {
        let spec = &scenario.caida_windows[window_index];
        let w = capture_window(scenario, spec);
        // audit:allow(panic-path) — caida_windows come from the scenario's own grid, so lookup cannot fail
        let month = scenario.window_month(spec).expect("window on grid");
        Self::from_window(&w, holder, month)
    }

    /// Number of unique sources.
    pub fn n_sources(&self) -> usize {
        self.degrees.len()
    }

    /// Total packets (equals `N_V`).
    pub fn total_packets(&self) -> u64 {
        self.degrees.iter().map(|&(_, d)| d).sum()
    }

    /// The degree histogram `n_t(d)`.
    pub fn histogram(&self) -> DegreeHistogram {
        DegreeHistogram::from_degrees(self.degrees.iter().map(|&(_, d)| d))
    }

    /// Sources grouped into log2 degree bins: bin index → D4M key set.
    /// Only bins holding at least `min_sources` sources are returned.
    pub fn bin_key_sets(&self, min_sources: usize) -> BTreeMap<u32, KeySet> {
        let mut groups: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for &(ip, d) in &self.degrees {
            groups.entry(log2_bin(d)).or_default().push(ip_key(ip));
        }
        groups
            .into_iter()
            .filter(|(_, v)| v.len() >= min_sources)
            .map(|(bin, keys)| (bin, keys.into_iter().collect()))
            .collect()
    }

    /// The full source key set of the window.
    pub fn key_set(&self) -> KeySet {
        self.degrees.iter().map(|&(ip, _)| ip_key(ip)).collect()
    }

    /// Sources grouped into log2 degree bins as numeric key sets — the
    /// allocation-free counterpart of [`Self::bin_key_sets`]. Bin
    /// membership is identical; keys are the `u32` addresses themselves
    /// instead of dotted-quad strings, and because [`ip_key`] zero-pads,
    /// both representations sort the same way.
    pub fn bin_ip_sets(&self, min_sources: usize) -> BTreeMap<u32, NumKeySet> {
        let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for &(ip, d) in &self.degrees {
            groups.entry(log2_bin(d)).or_default().push(ip);
        }
        groups
            .into_iter()
            .filter(|(_, v)| v.len() >= min_sources)
            .map(|(bin, ips)| (bin, ips.into_iter().collect()))
            .collect()
    }

    /// The full source set of the window as a numeric key set.
    pub fn ip_set(&self) -> NumKeySet {
        self.degrees.iter().map(|&(ip, _)| ip).collect()
    }

    /// Sources grouped into log2 degree bins as compressed bit sets — the
    /// word-parallel counterpart of [`Self::bin_ip_sets`] with identical
    /// bin membership. `degrees` is sorted by ip, so each bin's keys
    /// arrive already sorted and unique.
    pub fn bin_bit_sets(&self, min_sources: usize) -> BTreeMap<u32, BitSet> {
        let mut groups: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for &(ip, d) in &self.degrees {
            groups.entry(log2_bin(d)).or_default().push(ip);
        }
        groups
            .into_iter()
            .filter(|(_, v)| v.len() >= min_sources)
            .map(|(bin, ips)| (bin, BitSet::from_sorted_unique(&ips)))
            .collect()
    }

    /// The full source set of the window as a compressed bit set.
    pub fn bit_set(&self) -> BitSet {
        let ips: Vec<u32> = self.degrees.iter().map(|&(ip, _)| ip).collect();
        BitSet::from_sorted_unique(&ips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_netmodel::Scenario;
    use std::sync::OnceLock;

    fn fixture() -> &'static (Scenario, WindowDegrees) {
        static F: OnceLock<(Scenario, WindowDegrees)> = OnceLock::new();
        F.get_or_init(|| {
            let s = Scenario::paper_scaled(1 << 14, 31);
            let holder = Holder::new("telescope", &[7u8; 32]);
            let wd = WindowDegrees::capture(&s, 0, &holder);
            (s, wd)
        })
    }

    #[test]
    fn degrees_conserve_packets() {
        let (s, wd) = fixture();
        assert_eq!(wd.total_packets(), s.n_v as u64);
    }

    #[test]
    fn sources_are_real_world_ips() {
        let (s, wd) = fixture();
        // Every deanonymized source must be an actual population member
        // (legit packets were filtered before the matrix).
        let world: std::collections::HashSet<u32> =
            s.population.sources.iter().map(|x| x.ip.0).collect();
        for &(ip, _) in &wd.degrees {
            assert!(world.contains(&ip), "unknown source {ip:#x}");
        }
    }

    #[test]
    fn window_metadata() {
        let (_, wd) = fixture();
        assert_eq!(wd.label, "2020-06-17-12:00:00");
        assert_eq!(wd.month, 4);
        assert!(wd.n_sources() > 10);
    }

    #[test]
    fn histogram_matches_degrees() {
        let (_, wd) = fixture();
        let h = wd.histogram();
        assert_eq!(h.total() as usize, wd.n_sources());
        let max = wd.degrees.iter().map(|&(_, d)| d).max().unwrap();
        assert_eq!(h.d_max(), max);
    }

    #[test]
    fn bins_partition_the_sources() {
        let (_, wd) = fixture();
        let bins = wd.bin_key_sets(1);
        let total: usize = bins.values().map(|k| k.len()).sum();
        assert_eq!(total, wd.n_sources());
        // Each bin's sources really have degrees in that bin.
        let by_ip: std::collections::HashMap<String, u64> =
            wd.degrees.iter().map(|&(ip, d)| (ip_key(ip), d)).collect();
        for (bin, keys) in &bins {
            for k in keys.iter() {
                assert_eq!(log2_bin(by_ip[k]), *bin);
            }
        }
    }

    #[test]
    fn min_sources_filters_sparse_bins() {
        let (_, wd) = fixture();
        let all = wd.bin_key_sets(1);
        let filtered = wd.bin_key_sets(50);
        assert!(filtered.len() <= all.len());
        assert!(filtered.values().all(|k| k.len() >= 50));
    }

    #[test]
    fn key_set_has_one_key_per_source() {
        let (_, wd) = fixture();
        assert_eq!(wd.key_set().len(), wd.n_sources());
    }

    #[test]
    fn numeric_bins_mirror_string_bins() {
        let (_, wd) = fixture();
        let s_bins = wd.bin_key_sets(1);
        let n_bins = wd.bin_ip_sets(1);
        assert_eq!(s_bins.len(), n_bins.len());
        for (bin, keys) in &s_bins {
            assert_eq!(&n_bins[bin].to_key_set(), keys, "bin {bin} diverged");
        }
        assert_eq!(wd.ip_set().to_key_set(), wd.key_set());
    }

    #[test]
    fn bit_set_bins_mirror_numeric_bins() {
        let (_, wd) = fixture();
        let n_bins = wd.bin_ip_sets(1);
        let b_bins = wd.bin_bit_sets(1);
        assert_eq!(n_bins.len(), b_bins.len());
        for (bin, keys) in &n_bins {
            b_bins[bin].check_invariants().unwrap();
            assert_eq!(&b_bins[bin].to_num_key_set(), keys, "bin {bin} diverged");
        }
        wd.bit_set().check_invariants().unwrap();
        assert_eq!(wd.bit_set().to_num_key_set(), wd.ip_set());
        // min_sources filters identically.
        assert_eq!(
            wd.bin_bit_sets(50).keys().collect::<Vec<_>>(),
            wd.bin_ip_sets(50).keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn numeric_bins_respect_min_sources() {
        let (_, wd) = fixture();
        let filtered = wd.bin_ip_sets(50);
        assert_eq!(
            filtered.keys().collect::<Vec<_>>(),
            wd.bin_key_sets(50).keys().collect::<Vec<_>>()
        );
        assert!(filtered.values().all(|k| k.len() >= 50));
    }
}
