//! Darkspace definition and the telescope's validity filter.

use obscor_pcap::{Ip4, Packet, PacketFilter};

/// A globally routed /8 darkspace with a handful of allocated addresses at
/// its base (which carry legitimate traffic and are excluded from
/// analysis).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Darkspace {
    /// First octet of the /8.
    pub octet: u8,
    /// Number of allocated addresses at the base of the prefix.
    pub n_allocated: u32,
}

impl Darkspace {
    /// A /8 darkspace at `octet.0.0.0/8` with `n_allocated` live hosts.
    pub fn slash8(octet: u8, n_allocated: u32) -> Self {
        Self { octet, n_allocated }
    }

    /// Whether an address lies inside the /8.
    pub fn contains(&self, ip: Ip4) -> bool {
        (ip.0 >> 24) as u8 == self.octet
    }

    /// Whether an address is one of the allocated (non-dark) hosts.
    pub fn is_allocated(&self, ip: Ip4) -> bool {
        self.contains(ip) && (ip.0 & 0x00FF_FFFF) < self.n_allocated
    }

    /// The packet validity filter: destination in the darkspace and *not*
    /// an allocated address — i.e. genuinely unsolicited traffic. This is
    /// the paper's "discarding the small amount of legitimate traffic".
    pub fn validity_filter(&self) -> DarkspaceFilter {
        DarkspaceFilter { ds: *self }
    }
}

/// [`PacketFilter`] implementation for a [`Darkspace`].
#[derive(Clone, Copy, Debug)]
pub struct DarkspaceFilter {
    ds: Darkspace,
}

impl PacketFilter for DarkspaceFilter {
    fn accept(&self, p: &Packet) -> bool {
        self.ds.contains(p.dst) && !self.ds.is_allocated(p.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_pcap::Protocol;

    fn pkt(dst: u32) -> Packet {
        Packet { dst: Ip4(dst), proto: Protocol::Tcp, ..Packet::default() }
    }

    #[test]
    fn membership_and_allocation() {
        let ds = Darkspace::slash8(44, 256);
        assert!(ds.contains(Ip4(0x2C01_0203)));
        assert!(!ds.contains(Ip4(0x2D01_0203)));
        assert!(ds.is_allocated(Ip4(0x2C00_0001)));
        assert!(ds.is_allocated(Ip4(0x2C00_00FF)));
        assert!(!ds.is_allocated(Ip4(0x2C00_0100)));
        assert!(!ds.is_allocated(Ip4(0x2D00_0001)), "allocation implies membership");
    }

    #[test]
    fn filter_keeps_dark_traffic_only() {
        let ds = Darkspace::slash8(44, 256);
        let f = ds.validity_filter();
        assert!(f.accept(&pkt(0x2C12_3456)), "dark destination accepted");
        assert!(!f.accept(&pkt(0x2C00_0001)), "legitimate destination dropped");
        assert!(!f.accept(&pkt(0x0808_0808)), "external destination dropped");
    }

    #[test]
    fn zero_allocated_keeps_whole_prefix_dark() {
        let ds = Darkspace::slash8(10, 0);
        assert!(!ds.is_allocated(Ip4(0x0A00_0000)));
        assert!(ds.validity_filter().accept(&pkt(0x0A00_0000)));
    }
}
