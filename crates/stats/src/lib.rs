//! Statistics for heavy-tailed network measurements.
//!
//! Implements every statistical device the paper uses:
//!
//! * [`histogram`] — degree histograms `n_t(d)`, probabilities `p_t(d)`,
//!   cumulative probabilities `P_t(d)` and `d_max`,
//! * [`binning`] — binary-logarithmic pooling: the differential cumulative
//!   probability `D_t(d_i) = P_t(d_i) − P_t(d_{i−1})` with `d_i = 2^i`
//!   (Clauset–Shalizi–Newman-style log binning), used by every figure,
//! * [`zipf`] — the Zipf–Mandelbrot distribution
//!   `p(d) ∝ 1/(d + δ)^α`: exact pmf, fast inverse-CDF sampling, and
//!   grid fitting against log-binned data (Fig 3),
//! * [`fit`] — the three temporal models of Fig 5 (Gaussian, Cauchy, and
//!   the paper's modified Cauchy `β/(β + |t−t0|^α)`), fit exactly as the
//!   paper describes: scan an `(α, β)` grid, normalize to the peak, and
//!   minimize the `| |^{1/2}` norm,
//! * [`norms`] — p-norms including the fractional `p = 1/2` norm the paper
//!   prefers for heavy-tailed residuals,
//! * [`sample`] — an alias-method table for O(1) weighted sampling, the
//!   workhorse of synthetic packet emission,
//! * [`summary`] — scalar summaries (mean, variance, quantiles).

pub mod binning;
pub mod bootstrap;
pub mod fit;
pub mod histogram;
pub mod interval;
pub mod norms;
pub mod powerlaw;
pub mod regress;
pub mod sample;
pub mod summary;
pub mod zipf;

pub use binning::{differential_cumulative, log2_bin, Log2Binned};
pub use fit::{fit_cauchy, fit_gaussian, fit_modified_cauchy, ModCauchyFit, TemporalModel};
pub use histogram::DegreeHistogram;
pub use interval::{wilson, wilson95, Interval};
pub use norms::{pnorm, residual_pnorm};
pub use powerlaw::{fit_power_law, PowerLawFit};
pub use sample::AliasTable;
pub use zipf::{fit_zipf_mandelbrot, ZipfMandelbrot, ZmFit};
