//! Integration tests for the audit gate.
//!
//! The fixture trees under `tests/fixtures/` are scanned (never compiled):
//! `bad/` seeds at least one violation of every rule and must fail with
//! `file:line` diagnostics; `clean/` must pass. The real workspace is also
//! audited and must be clean — this test IS the gate CI relies on.

use std::path::{Path, PathBuf};
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().expect("workspace root")
}

#[test]
fn bad_fixture_trips_every_rule() {
    let report = xtask::audit(&fixture("bad")).expect("audit runs");
    assert!(!report.is_clean());
    let rules: std::collections::HashSet<&str> =
        report.diagnostics.iter().map(|d| d.rule).collect();
    for rule in
        ["index-cast", "panic-path", "float-eq", "invariant-coverage", "instant-timing", "key-pack"]
    {
        assert!(rules.contains(rule), "rule {rule} not tripped: {:?}", report.diagnostics);
    }
    // Diagnostics carry concrete file:line positions.
    for d in &report.diagnostics {
        assert!(d.line > 0, "diagnostic without a line: {d:?}");
        assert!(d.file.ends_with(".rs"), "diagnostic without a file: {d:?}");
        let rendered = d.render();
        assert!(rendered.contains(&format!(":{}: [", d.line)), "bad render: {rendered}");
    }
}

#[test]
fn bad_fixture_diagnostics_point_at_seeded_lines() {
    let report = xtask::audit(&fixture("bad")).expect("audit runs");
    let has = |rule: &str, file_part: &str, line: usize| {
        report
            .diagnostics
            .iter()
            .any(|d| d.rule == rule && d.file.contains(file_part) && d.line == line)
    };
    // Lines match the seeded markers in the fixture sources.
    assert!(has("panic-path", "core/src/lib.rs", 7), "panic! line");
    assert!(has("index-cast", "core/src/lib.rs", 9), ".len() as u32 line");
    assert!(has("index-cast", "core/src/lib.rs", 10), "u64 as usize line");
    assert!(has("panic-path", "core/src/lib.rs", 11), "unwrap line");
    assert!(has("float-eq", "stats/src/lib.rs", 4), "x == 0.0 line");
    assert!(has("invariant-coverage", "hypersparse/src/lib.rs", 10), "Grid::new line");
    assert!(has("invariant-coverage", "hypersparse/src/lib.rs", 28), "Loose::make line");
    assert!(has("instant-timing", "telescope/src/lib.rs", 6), "Instant::now line");
    assert!(has("instant-timing", "telescope/src/lib.rs", 7), "SystemTime::now line");
    // The allow-marked site and the test-mod site in telescope stay silent.
    assert!(
        !report.diagnostics.iter().any(|d| d.file.contains("telescope/src/lib.rs") && d.line > 7),
        "allow marker or test exemption failed: {:?}",
        report.diagnostics
    );
    // Test code in the bad fixture is exempt: nothing past line 15 in core.
    assert!(
        !report.diagnostics.iter().any(|d| d.file.contains("core/src/lib.rs") && d.line > 15),
        "test code was not exempted: {:?}",
        report.diagnostics
    );
    // Ad-hoc key packing outside hypersparse::keypack trips key-pack; the
    // allow-marked and #[cfg(test)] sites right below it stay silent.
    assert!(has("key-pack", "hypersparse/src/packing.rs", 6), "as u64 << 32 line");
    assert!(
        !report.diagnostics.iter().any(|d| d.file.contains("hypersparse/src/packing.rs") && d.line > 6),
        "key-pack allow marker or test exemption failed: {:?}",
        report.diagnostics
    );
    // pcap joined the panic-free set with the fault-recovery layer:
    // unwrapping/expecting codec or leaf-read results must trip.
    assert!(has("panic-path", "pcap/src/lib.rs", 6), "codec decode unwrap line");
    assert!(has("panic-path", "pcap/src/lib.rs", 11), "leaf read expect line");
    assert!(
        !report.diagnostics.iter().any(|d| d.file.contains("pcap/src/lib.rs") && d.line > 13),
        "pcap test code was not exempted: {:?}",
        report.diagnostics
    );
}

#[test]
fn clean_fixture_passes() {
    let report = xtask::audit(&fixture("clean")).expect("audit runs");
    assert!(report.is_clean(), "unexpected diagnostics: {:?}", report.diagnostics);
    assert!(report.files_scanned >= 3);
}

#[test]
fn real_workspace_is_clean() {
    let report = xtask::audit(&workspace_root()).expect("audit runs");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(report.is_clean(), "workspace audit failed:\n{}", rendered.join("\n"));
}

#[test]
fn cli_exits_nonzero_with_file_line_output_on_bad_fixture() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root"])
        .arg(fixture("bad"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1), "expected exit 1: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("src/lib.rs:"), "no file:line in output:\n{stdout}");
    assert!(stdout.contains("[panic-path]"), "missing rule tag:\n{stdout}");
    assert!(stdout.contains("violation(s)"), "missing summary:\n{stdout}");
}

#[test]
fn cli_json_mode_is_machine_readable() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--json", "--root"])
        .arg(fixture("bad"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('{') && stdout.trim_end().ends_with('}'));
    assert!(stdout.contains("\"ok\":false"));
    for rule in
        ["index-cast", "panic-path", "float-eq", "invariant-coverage", "instant-timing", "key-pack"]
    {
        assert!(stdout.contains(&format!("\"rule\":\"{rule}\"")), "missing {rule}:\n{stdout}");
    }
    assert!(stdout.contains("\"line\":"));
}

#[test]
fn cli_json_mode_clean_exit_zero() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--json", "--root"])
        .arg(fixture("clean"))
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(0), "expected exit 0: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"ok\":true"));
    assert!(stdout.contains("\"violations\":[]"));
}

#[test]
fn cli_usage_error_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("frobnicate")
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn cli_nonexistent_root_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["audit", "--root", "/definitely/not/a/real/dir"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2), "a bad root must not report clean");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not a directory"), "stderr: {stderr}");
}
