//! Streaming line-rate ingest service.
//!
//! The batch pipeline captures a whole window, then analyzes it. The
//! operational setting the paper models — a darknet telescope watching live
//! traffic — is a stream, and the GraphBLAS-on-the-edge line of work builds
//! its matrices *while the packets arrive*: memoized-CryptoPAN
//! anonymization at line rate, cache-sized leaf matrices compacted as they
//! fill, and a hierarchical fold that keeps memory bounded.
//! [`IngestService`] is that architecture:
//!
//! ```text
//!                 bounded(queue_depth)            unbounded
//!  producer ──┬──> worker 0: leaf Coo ─ radix ──┐
//!  (caller    ├──> worker 1: leaf Coo ─ radix ──┼──> collector ──> snapshots
//!   thread)   ├──> ...                          │    (reorders,
//!             └──> worker N-1                   │     merges, closes)
//! ```
//!
//! * The **producer** is the caller: [`IngestService::push`] accumulates
//!   packets into shard batches and round-robins them over `workers`
//!   bounded channels. A full channel **blocks** the producer (after
//!   counting the stall in `ingest.backpressure.blocked`) — packets are
//!   never dropped.
//! * Each **worker** owns a leaf [`Coo`] builder; when it reaches
//!   `leaf_capacity` triples it is compacted straight to CSR through the
//!   PR 5 radix kernel (`Coo::into_csr`) and handed to the collector
//!   tagged with a `(worker, seq)` sequence number.
//! * The **collector** buffers each window's leaves and, once every worker
//!   has acknowledged the window's close marker, merges them **in
//!   `(worker, seq)` order** — *not* completion order — into a
//!   [`HierarchicalAccumulator`] via
//!   [`HierarchicalAccumulator::push_csr_leaf`], then emits a
//!   [`WindowSnapshot`].
//!
//! # Determinism and bit-identity
//!
//! For `u64` packet counts the final CSR is the canonical form of a
//! multiset of edges, so *any* leaf partition and merge order yields the
//! same matrix — the differential tests in `tests/streaming_ingest.rs`
//! prove the streamed window is byte-equal to `capture_window` + batch
//! build for every (workers, queue-depth, window-size) combination. The
//! sequence-ordered merge closes the remaining hazard: merge *statistics*
//! (leaf/merge counts per level) and any future non-integer `Value` would
//! observe completion order, which varies run to run. Ordering leaves by
//! `(worker, seq)` makes the whole fold a pure function of the input
//! partition.
//!
//! # Window-close protocol
//!
//! The producer cuts shard batches at window boundaries (a batch never
//! spans two windows) and broadcasts a `Close` marker to every worker
//! after the last batch of a window. Channels are FIFO, so by the time a
//! worker sees `Close(k)` it has folded every one of its window-`k`
//! batches; it flushes its partial leaf and acknowledges with a
//! `WindowDone` carrying exact packet counts. The collector closes window
//! `k` when all `workers` acknowledgements are in. [`IngestService::finish`]
//! sends a final mid-window `Close` (flagged partial), drops the channels,
//! and joins everything — the [`DrainReport`] proves exact accounting:
//! `received == compacted` and `in_flight == 0`.
//!
//! # Metrics (opt-in)
//!
//! Gated behind [`enable_ingest_metrics`] so the pinned default metrics
//! schema never changes (same contract as `hypersparse.radix.*`):
//! `telescope.ingest.{packets,windows_closed,leaves,merges}_total` and
//! `ingest.backpressure.blocked`, all pinned by `tests/metrics_optin.rs`.

use crate::matrix::PAPER_LEAF_COUNT;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use obscor_anonymize::MemoCryptoPan;
use obscor_hypersparse::{
    Coo, Csr, DirMedium, HierarchicalAccumulator, SpillAccumulator, SpillConfig, SpillReport,
};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

static METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Opt in to `telescope.ingest.*` / `ingest.backpressure.*` metrics
/// emission for this process.
///
/// Off by default so the pinned default metrics schema never changes; the
/// CLI `serve` subcommand enables it for its own runs.
pub fn enable_ingest_metrics() {
    METRICS_ENABLED.store(true, Ordering::Relaxed); // ordering: set-once enable flag; callers tolerate a stale false
}

/// Whether [`enable_ingest_metrics`] has been called.
pub fn ingest_metrics_enabled() -> bool {
    METRICS_ENABLED.load(Ordering::Relaxed) // ordering: enable-flag read; staleness only delays metric emission
}

/// Configuration of an [`IngestService`].
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Worker threads packets are sharded across.
    pub workers: usize,
    /// Valid packets per window; a snapshot is emitted every `window_packets`.
    pub window_packets: usize,
    /// Shard batches buffered per worker channel before producers block.
    pub queue_depth: usize,
    /// Packets accumulated by the producer before handing a batch to a
    /// worker. Window boundaries always cut a batch short.
    pub shard_batch: usize,
    /// Triples per worker leaf before radix compaction to CSR.
    pub leaf_capacity: usize,
    /// Artificial per-batch worker delay in microseconds. `0` in
    /// production; the backpressure tests and benches use it to force a
    /// deliberately slow consumer.
    pub worker_delay_micros: u64,
    /// Tracked-live-byte budget for the collector's window fold. `None`
    /// (the default) keeps the fold fully in memory; `Some(bytes)` routes
    /// it through the out-of-core [`SpillAccumulator`], evicting carry
    /// parts to disk whenever the budget is exceeded. The emitted matrix
    /// is bit-identical either way.
    pub memory_budget: Option<u64>,
    /// Directory spill files are created under when `memory_budget` is
    /// set; the system temp dir when `None`.
    pub spill_dir: Option<PathBuf>,
}

impl IngestConfig {
    /// A config with the defaults the batch path uses: leaf capacity
    /// scaled so a full window is ~`2^13` leaves (the paper's leaf count),
    /// 1024-packet shard batches, and queue depth 4.
    ///
    /// # Panics
    /// Panics if `workers == 0` or `window_packets == 0`.
    pub fn new(workers: usize, window_packets: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        assert!(window_packets > 0, "window must hold at least one packet");
        Self {
            workers,
            window_packets,
            queue_depth: 4,
            shard_batch: 1024,
            leaf_capacity: (window_packets / PAPER_LEAF_COUNT).max(1024),
            worker_delay_micros: 0,
            memory_budget: None,
            spill_dir: None,
        }
    }

    /// Internal consistency check used by [`IngestService::new`].
    fn validate(&self) {
        assert!(self.workers > 0, "need at least one worker");
        assert!(self.window_packets > 0, "window must hold at least one packet");
        assert!(self.queue_depth > 0, "queue depth must be positive");
        assert!(self.shard_batch > 0, "shard batch must be positive");
        assert!(self.leaf_capacity > 0, "leaf capacity must be positive");
    }
}

/// One closed window, emitted by the collector.
#[derive(Clone, Debug)]
pub struct WindowSnapshot {
    /// Zero-based window index in stream order.
    pub index: u64,
    /// The window's traffic matrix — byte-equal to the batch build of the
    /// same packets.
    pub matrix: Csr<u64>,
    /// Valid packets folded into this window.
    pub packets: u64,
    /// Compacted leaves merged into the matrix.
    pub leaves: u64,
    /// Pairwise carry merges performed by the hierarchical fold.
    pub merges: u64,
    /// Whether this window was cut short by a drain ([`IngestService::finish`]
    /// before the boundary) rather than closing at `window_packets`.
    pub partial: bool,
    /// Spill/merge accounting when the window was folded out-of-core
    /// ([`IngestConfig::memory_budget`] set); `None` for the in-memory
    /// fold.
    pub spill: Option<SpillReport>,
}

/// Exact end-of-stream accounting returned by [`IngestService::finish`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DrainReport {
    /// Packets accepted by [`IngestService::push`].
    pub received: u64,
    /// Packets that reached the collector inside compacted leaves.
    pub compacted: u64,
    /// Packets sent to workers but not yet collected — always `0` after a
    /// completed drain.
    pub in_flight: u64,
    /// Windows closed (including a final partial window, if any).
    pub windows_closed: u64,
    /// Producer sends that found a worker queue full and blocked.
    pub blocked: u64,
    /// Whether the drain flushed a partial (mid-window) snapshot.
    pub partial_flushed: bool,
}

impl DrainReport {
    /// The drain invariant: every received packet was compacted and
    /// nothing is still in flight.
    pub fn is_exact(&self) -> bool {
        self.received == self.compacted && self.in_flight == 0
    }
}

/// Counters shared between producer, workers, and collector.
struct Shared {
    /// Packets handed to workers whose leaf has not yet reached the
    /// collector.
    in_flight: AtomicU64,
    /// Producer sends that hit a full queue and blocked.
    blocked: AtomicU64,
    /// Windows closed so far, published by the collector.
    windows_closed: AtomicU64,
}

/// Producer → worker protocol.
enum ToWorker {
    /// One shard batch of `(src, dst)` pairs, all from the same window.
    Batch(Vec<(u32, u32)>),
    /// The window the worker is currently folding is complete (or, when
    /// `partial`, being drained mid-window): flush and acknowledge.
    Close {
        /// Window index being closed.
        window: u64,
        /// Whether this close is a mid-window drain flush.
        partial: bool,
    },
}

/// Worker → collector protocol.
enum ToCollector {
    /// One compacted leaf, tagged with its deterministic merge key.
    Leaf {
        /// Window the leaf belongs to.
        window: u64,
        /// Producing worker (first half of the merge key).
        worker: usize,
        /// Per-(worker, window) leaf sequence number (second half).
        seq: u64,
        /// Packets (pre-dedup triples) folded into the leaf.
        packets: u64,
        /// The compacted leaf matrix.
        csr: Csr<u64>,
    },
    /// A worker acknowledges a window close with its exact totals.
    WindowDone {
        /// Window index being acknowledged.
        window: u64,
        /// Leaves this worker contributed to the window.
        leaves: u64,
        /// Packets this worker folded into the window.
        packets: u64,
        /// Whether the close was a mid-window drain flush.
        partial: bool,
    },
}

/// Collector totals returned through its join handle.
struct CollectorReport {
    compacted: u64,
    windows_closed: u64,
}

/// A long-lived streaming ingest service; see the module docs for the
/// architecture.
pub struct IngestService {
    cfg: IngestConfig,
    shared: Arc<Shared>,
    senders: Vec<Sender<ToWorker>>,
    workers: Vec<JoinHandle<()>>,
    collector: JoinHandle<CollectorReport>,
    snapshots: Receiver<WindowSnapshot>,
    /// Producer-side shard batch being accumulated.
    batch: Vec<(u32, u32)>,
    next_worker: usize,
    window: u64,
    in_window: u64,
    received: u64,
}

impl IngestService {
    /// Spawn the worker pool and collector for raw (non-anonymized)
    /// ingest.
    ///
    /// # Panics
    /// Panics if any `cfg` field is zero where a positive value is
    /// required.
    pub fn new(cfg: IngestConfig) -> Self {
        Self::spawn(cfg, None)
    }

    /// Spawn the pool with line-rate memoized-CryptoPAN anonymization:
    /// every batch is anonymized inside the worker through
    /// [`MemoCryptoPan::anonymize_slice`] before it is folded, so the
    /// emitted matrices match [`crate::matrix::build_anonymized_matrix`]
    /// under the same key.
    ///
    /// # Panics
    /// Panics if any `cfg` field is zero where a positive value is
    /// required.
    pub fn with_anonymizer(cfg: IngestConfig, pan: MemoCryptoPan) -> Self {
        Self::spawn(cfg, Some(Arc::new(pan)))
    }

    fn spawn(cfg: IngestConfig, pan: Option<Arc<MemoCryptoPan>>) -> Self {
        cfg.validate();
        let shared = Arc::new(Shared {
            in_flight: AtomicU64::new(0),
            blocked: AtomicU64::new(0),
            windows_closed: AtomicU64::new(0),
        });
        let (leaf_tx, leaf_rx) = unbounded::<ToCollector>();
        let (snap_tx, snap_rx) = unbounded::<WindowSnapshot>();
        let mut senders = Vec::with_capacity(cfg.workers);
        let mut workers = Vec::with_capacity(cfg.workers);
        for id in 0..cfg.workers {
            let (tx, rx) = bounded::<ToWorker>(cfg.queue_depth);
            senders.push(tx);
            let out = leaf_tx.clone();
            let cfg_w = cfg.clone();
            let pan_w = pan.clone();
            workers.push(std::thread::spawn(move || worker_loop(id, &cfg_w, &rx, &out, pan_w.as_deref())));
        }
        drop(leaf_tx); // collector's input closes when the last worker exits
        let n_workers = cfg.workers;
        let fold = FoldConfig {
            leaf_capacity: cfg.leaf_capacity,
            memory_budget: cfg.memory_budget,
            spill_dir: cfg.spill_dir.clone(),
        };
        let shared_c = Arc::clone(&shared);
        let collector = std::thread::spawn(move || {
            collector_loop(n_workers, &fold, &leaf_rx, &snap_tx, &shared_c)
        });
        Self {
            cfg,
            shared,
            senders,
            workers,
            collector,
            snapshots: snap_rx,
            batch: Vec::new(),
            next_worker: 0,
            window: 0,
            in_window: 0,
            received: 0,
        }
    }

    /// Ingest one valid packet's `(src, dst)` coordinate. Closes the
    /// current window automatically when it reaches `window_packets`.
    ///
    /// # Panics
    /// Panics if a worker thread has died (its receiver is gone).
    pub fn push(&mut self, src: u32, dst: u32) {
        if self.batch.is_empty() {
            self.batch.reserve(self.cfg.shard_batch);
        }
        self.batch.push((src, dst));
        self.received += 1;
        self.in_window += 1;
        if self.in_window >= self.cfg.window_packets as u64 {
            // Boundary: ship the (short) final batch, then broadcast the
            // close marker so every worker flushes this window.
            self.flush_batch();
            self.broadcast_close(false);
            self.window += 1;
            self.in_window = 0;
        } else if self.batch.len() >= self.cfg.shard_batch {
            self.flush_batch();
        }
    }

    /// Ingest a slice of `(src, dst)` coordinates.
    pub fn push_pairs(&mut self, pairs: &[(u32, u32)]) {
        for &(s, d) in pairs {
            self.push(s, d);
        }
    }

    /// Packets accepted so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Windows closed so far (snapshots may still be queued for receipt).
    pub fn windows_closed(&self) -> u64 {
        // ordering: the collector's snapshot send happens-before its Release store, which this Acquire pairs with
        self.shared.windows_closed.load(Ordering::Acquire)
    }

    /// Receive the next closed-window snapshot if one is ready, without
    /// blocking.
    pub fn try_snapshot(&self) -> Option<WindowSnapshot> {
        self.snapshots.try_recv().ok()
    }

    /// Shut down: flush the shard batch and any partial window, close the
    /// channels, join every worker and the collector, and return all
    /// not-yet-received snapshots plus the exact drain accounting.
    ///
    /// # Panics
    /// Panics if a worker or the collector panicked.
    pub fn finish(mut self) -> (Vec<WindowSnapshot>, DrainReport) {
        self.flush_batch();
        let partial = self.in_window > 0;
        if partial {
            // Mid-window drain: flush what the workers hold, flagged
            // partial so downstream can tell it from a boundary close.
            self.broadcast_close(true);
        }
        drop(self.senders); // workers' rx.iter() ends, they flush + exit
        for handle in self.workers {
            // audit:allow(panic-path) — propagating a worker panic to the caller is the documented contract
            handle.join().expect("ingest worker panicked");
        }
        // audit:allow(panic-path) — propagating a collector panic to the caller is the documented contract
        let report = self.collector.join().expect("ingest collector panicked");
        let mut snapshots = Vec::new();
        while let Ok(s) = self.snapshots.try_recv() {
            snapshots.push(s);
        }
        let drain = DrainReport {
            received: self.received,
            compacted: report.compacted,
            // ordering: the worker/collector joins above happens-before this load, so any residue is a real bug
            in_flight: self.shared.in_flight.load(Ordering::Acquire),
            windows_closed: report.windows_closed,
            // ordering: counter read after the joins; no concurrent writers remain
            blocked: self.shared.blocked.load(Ordering::Relaxed),
            partial_flushed: partial,
        };
        (snapshots, drain)
    }

    /// Hand the accumulated shard batch to the next worker (round-robin).
    fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.batch);
        self.shared.in_flight.fetch_add(batch.len() as u64, Ordering::Relaxed); // ordering: counter; exactness is settled by the joins in finish
        self.send_to(self.next_worker, ToWorker::Batch(batch));
        self.next_worker = (self.next_worker + 1) % self.senders.len();
    }

    /// Broadcast a window-close marker to every worker.
    fn broadcast_close(&self, partial: bool) {
        for tx in &self.senders {
            tx.send(ToWorker::Close { window: self.window, partial })
                // audit:allow(panic-path) — documented `# Panics` contract: a dead worker is unrecoverable
                .expect("ingest worker terminated early");
        }
    }

    /// Send to worker `w`, counting (never dropping) backpressure stalls.
    fn send_to(&self, w: usize, msg: ToWorker) {
        let msg = match self.senders[w].try_send(msg) {
            Ok(()) => return,
            Err(TrySendError::Full(m)) => {
                self.shared.blocked.fetch_add(1, Ordering::Relaxed); // ordering: counter; read only after the joins in finish
                if ingest_metrics_enabled() {
                    obscor_obs::counter("ingest.backpressure.blocked").inc();
                }
                m
            }
            Err(TrySendError::Disconnected(_)) => {
                // audit:allow(panic-path) — documented `# Panics` contract: a dead worker is unrecoverable
                panic!("ingest worker terminated early");
            }
        };
        // Queue full: block until the slow consumer drains a slot.
        self.senders[w]
            .send(msg)
            // audit:allow(panic-path) — documented `# Panics` contract: a dead worker is unrecoverable
            .expect("ingest worker terminated early");
    }
}

/// Worker body: fold batches into a leaf `Coo`, radix-compact full leaves,
/// flush on every close marker.
fn worker_loop(
    id: usize,
    cfg: &IngestConfig,
    rx: &Receiver<ToWorker>,
    out: &Sender<ToCollector>,
    pan: Option<&MemoCryptoPan>,
) {
    let mut leaf = Coo::<u64>::with_capacity(cfg.leaf_capacity);
    let mut seq = 0u64; // leaf sequence within the current window
    let mut leaves = 0u64;
    let mut packets = 0u64;
    let mut window = 0u64;
    let mut addrs: Vec<u32> = Vec::new(); // anonymization scratch
    for msg in rx.iter() {
        match msg {
            ToWorker::Batch(mut batch) => {
                if cfg.worker_delay_micros > 0 {
                    std::thread::sleep(std::time::Duration::from_micros(cfg.worker_delay_micros));
                }
                if let Some(pan) = pan {
                    // Line-rate anonymization: one batched prefix-sorted
                    // pass over both endpoints of the whole shard.
                    addrs.clear();
                    addrs.reserve(batch.len() * 2);
                    for &(s, d) in &batch {
                        addrs.push(s);
                        addrs.push(d);
                    }
                    pan.anonymize_slice(&mut addrs);
                    for (pair, anon) in batch.iter_mut().zip(addrs.chunks_exact(2)) {
                        *pair = (anon[0], anon[1]);
                    }
                }
                for (s, d) in batch {
                    leaf.push_edge(s, d);
                    packets += 1;
                    if leaf.len() >= cfg.leaf_capacity {
                        emit_leaf(&mut leaf, cfg.leaf_capacity, window, id, &mut seq, &mut leaves, out);
                    }
                }
            }
            ToWorker::Close { window: w, partial } => {
                debug_assert_eq!(w, window, "close marker out of order");
                if !leaf.is_empty() {
                    emit_leaf(&mut leaf, cfg.leaf_capacity, window, id, &mut seq, &mut leaves, out);
                }
                let done = ToCollector::WindowDone { window, leaves, packets, partial };
                // audit:allow(panic-path) — a dead collector is unrecoverable; the panic propagates through finish's join
                out.send(done).expect("ingest collector terminated early");
                window = w + 1;
                seq = 0;
                leaves = 0;
                packets = 0;
            }
        }
    }
}

/// Compact the worker's current leaf and ship it, tagged `(worker, seq)`.
fn emit_leaf(
    leaf: &mut Coo<u64>,
    capacity: usize,
    window: u64,
    worker: usize,
    seq: &mut u64,
    leaves: &mut u64,
    out: &Sender<ToCollector>,
) {
    let full = std::mem::replace(leaf, Coo::with_capacity(capacity));
    let packets = full.len() as u64;
    let csr = full.into_csr(); // radix kernel above the measured crossover
    let msg = ToCollector::Leaf { window, worker, seq: *seq, packets, csr };
    *seq += 1;
    *leaves += 1;
    // audit:allow(panic-path) — a dead collector is unrecoverable; the panic propagates through finish's join
    out.send(msg).expect("ingest collector terminated early");
}

/// How the collector folds a closed window's leaves into its matrix.
#[derive(Clone, Debug)]
struct FoldConfig {
    leaf_capacity: usize,
    memory_budget: Option<u64>,
    spill_dir: Option<PathBuf>,
}

/// Per-window collector state while the window is still open.
#[derive(Default)]
struct OpenWindow {
    /// Buffered leaves keyed for the deterministic merge: `(worker, seq)`.
    leaves: Vec<(usize, u64, Csr<u64>)>,
    done: usize,
    packets: u64,
    /// Leaves the workers claim to have emitted — must match the buffer.
    reported_leaves: u64,
    partial: bool,
}

/// Collector body: reorder leaves, close windows when every worker has
/// acknowledged, emit snapshots.
fn collector_loop(
    workers: usize,
    fold: &FoldConfig,
    rx: &Receiver<ToCollector>,
    out: &Sender<WindowSnapshot>,
    shared: &Shared,
) -> CollectorReport {
    // Windows under construction. BTreeMap (not HashMap) so any future
    // iteration over still-open windows is deterministic.
    let mut open: BTreeMap<u64, OpenWindow> = BTreeMap::new();
    let mut compacted = 0u64;
    let mut closed = 0u64;
    for msg in rx.iter() {
        match msg {
            ToCollector::Leaf { window, worker, seq, packets, csr } => {
                compacted += packets;
                shared.in_flight.fetch_sub(packets, Ordering::Relaxed); // ordering: counter; exactness is settled by the joins in finish
                open.entry(window).or_default().leaves.push((worker, seq, csr));
            }
            ToCollector::WindowDone { window, leaves, packets, partial } => {
                let state = open.entry(window).or_default();
                state.done += 1;
                state.packets += packets;
                state.reported_leaves += leaves;
                state.partial |= partial;
                if state.done == workers {
                    // audit:allow(panic-path) — the entry was created three lines up; remove cannot miss
                    let state = open.remove(&window).expect("open window state");
                    // Channels are FIFO per worker, so every acknowledged
                    // leaf precedes its WindowDone; a mismatch here is a
                    // protocol bug, not a race.
                    assert_eq!(
                        state.leaves.len() as u64,
                        state.reported_leaves,
                        "window {window}: leaf buffer disagrees with worker acknowledgements"
                    );
                    if state.packets == 0 {
                        // A drain that lands exactly on a boundary closes
                        // an empty window; emit nothing.
                        continue;
                    }
                    let snap = close_window(window, state, fold);
                    closed += 1;
                    // A dropped snapshot receiver just means the service
                    // handle is gone; keep draining so workers can exit.
                    let _ = out.send(snap);
                    // ordering: the snapshot send above happens-before this Release store, paired with the Acquire in windows_closed
                    shared.windows_closed.store(closed, Ordering::Release);
                }
            }
        }
    }
    CollectorReport { compacted, windows_closed: closed }
}

/// Merge a closed window's leaves — in `(worker, seq)` order — and build
/// its snapshot.
fn close_window(index: u64, mut state: OpenWindow, fold: &FoldConfig) -> WindowSnapshot {
    // The determinism fix: leaves arrive in worker-completion order, which
    // varies run to run; the merge must not. Sort by the sequence key
    // before folding.
    state.leaves.sort_unstable_by_key(|&(worker, seq, _)| (worker, seq));
    let n_leaves = state.leaves.len() as u64;
    let (matrix, merges, spill) = fold_window(state.leaves, fold);
    if ingest_metrics_enabled() {
        obscor_obs::counter("telescope.ingest.windows_closed_total").inc();
        obscor_obs::counter("telescope.ingest.packets_total").add(state.packets);
        obscor_obs::counter("telescope.ingest.leaves_total").add(n_leaves);
        obscor_obs::counter("telescope.ingest.merges_total").add(merges);
    }
    WindowSnapshot {
        index,
        matrix,
        packets: state.packets,
        leaves: n_leaves,
        merges,
        partial: state.partial,
        spill,
    }
}

/// Fold already-sorted leaves through either the in-memory hierarchical
/// accumulator or, when a budget is configured, the out-of-core
/// [`SpillAccumulator`]. Returns the matrix, the pre-finalize carry-merge
/// count (identical between the two paths — both fold the same binary
/// counter), and the spill report when the out-of-core path ran.
fn fold_window(
    leaves: Vec<(usize, u64, Csr<u64>)>,
    fold: &FoldConfig,
) -> (Csr<u64>, u64, Option<SpillReport>) {
    if let Some(budget) = fold.memory_budget {
        // A spill directory that cannot be created degrades to the
        // in-memory fold rather than dropping the window: the matrix is
        // bit-identical either way, only the footprint differs.
        let base =
            fold.spill_dir.clone().unwrap_or_else(std::env::temp_dir);
        if let Ok(medium) = DirMedium::create_in(&base) {
            let config = SpillConfig {
                leaf_capacity: fold.leaf_capacity,
                memory_budget: Some(budget),
                ..SpillConfig::default()
            };
            let mut acc = SpillAccumulator::new(config, Arc::new(medium));
            for (_, _, csr) in leaves {
                acc.push_csr_leaf(csr);
            }
            let (matrix, report) = acc.finalize();
            return (matrix, report.stats.carry_merges, Some(report));
        }
    }
    let mut acc = HierarchicalAccumulator::<u64>::with_leaf_capacity(fold.leaf_capacity);
    for (_, _, csr) in leaves {
        acc.push_csr_leaf(csr);
    }
    let stats = acc.stats();
    (acc.finalize(), stats.merges, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_hypersparse::hier::accumulate_flat;

    fn pairs(n: usize, seed: u64) -> Vec<(u32, u32)> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (((state >> 33) % 4096) as u32, ((state >> 11) % 4096) as u32)
            })
            .collect()
    }

    fn flat(pairs: &[(u32, u32)]) -> Csr<u64> {
        accumulate_flat(pairs.iter().map(|&(s, d)| (s, d, 1u64)))
    }

    #[test]
    fn one_window_matches_flat_build() {
        let p = pairs(10_000, 42);
        let mut cfg = IngestConfig::new(3, 10_000);
        cfg.leaf_capacity = 512;
        cfg.shard_batch = 333;
        let mut svc = IngestService::new(cfg);
        svc.push_pairs(&p);
        let (snaps, drain) = svc.finish();
        assert_eq!(snaps.len(), 1);
        assert!(!snaps[0].partial);
        assert_eq!(snaps[0].packets, 10_000);
        assert_eq!(snaps[0].matrix, flat(&p));
        assert!(drain.is_exact(), "{drain:?}");
        assert_eq!(drain.windows_closed, 1);
    }

    #[test]
    fn windows_split_exactly_at_boundaries() {
        let p = pairs(2_500, 7);
        let mut cfg = IngestConfig::new(2, 1_000);
        cfg.leaf_capacity = 128;
        cfg.shard_batch = 64;
        let mut svc = IngestService::new(cfg);
        svc.push_pairs(&p);
        let (snaps, drain) = svc.finish();
        assert_eq!(snaps.len(), 3);
        assert_eq!(snaps[0].matrix, flat(&p[..1_000]));
        assert_eq!(snaps[1].matrix, flat(&p[1_000..2_000]));
        assert_eq!(snaps[2].matrix, flat(&p[2_000..]));
        assert!(snaps[2].partial && !snaps[0].partial && !snaps[1].partial);
        assert!(drain.partial_flushed);
        assert!(drain.is_exact(), "{drain:?}");
    }

    #[test]
    fn empty_service_drains_clean() {
        let svc = IngestService::new(IngestConfig::new(4, 100));
        let (snaps, drain) = svc.finish();
        assert!(snaps.is_empty());
        assert_eq!(drain, DrainReport {
            received: 0,
            compacted: 0,
            in_flight: 0,
            windows_closed: 0,
            blocked: drain.blocked,
            partial_flushed: false,
        });
    }

    #[test]
    fn boundary_exact_drain_emits_no_partial() {
        let p = pairs(2_000, 9);
        let mut cfg = IngestConfig::new(2, 1_000);
        cfg.leaf_capacity = 64;
        let mut svc = IngestService::new(cfg);
        svc.push_pairs(&p);
        let (snaps, drain) = svc.finish();
        assert_eq!(snaps.len(), 2);
        assert!(snaps.iter().all(|s| !s.partial));
        assert!(!drain.partial_flushed);
        assert!(drain.is_exact(), "{drain:?}");
    }

    #[test]
    fn spilled_windows_match_the_in_memory_fold() {
        let p = pairs(6_000, 77);
        let mut cfg = IngestConfig::new(3, 2_000);
        cfg.leaf_capacity = 256;
        cfg.shard_batch = 128;
        // Zero budget: every carry part must be evicted to disk.
        cfg.memory_budget = Some(0);
        let mut svc = IngestService::new(cfg);
        svc.push_pairs(&p);
        let (snaps, drain) = svc.finish();
        assert!(drain.is_exact(), "{drain:?}");
        assert_eq!(snaps.len(), 3);
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.matrix, flat(&p[i * 2_000..(i + 1) * 2_000]), "window {i}");
            let report = s.spill.as_ref().expect("budgeted fold must report spill stats");
            assert!(report.is_exact(), "window {i}: {report:?}");
            assert!(report.stats.evictions > 0, "window {i} never spilled");
        }
    }

    #[test]
    fn unbudgeted_snapshots_carry_no_spill_report() {
        let p = pairs(1_000, 3);
        let mut svc = IngestService::new(IngestConfig::new(2, 1_000));
        svc.push_pairs(&p);
        let (snaps, drain) = svc.finish();
        assert!(drain.is_exact(), "{drain:?}");
        assert!(snaps.iter().all(|s| s.spill.is_none()));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = IngestConfig::new(0, 100);
    }
}
