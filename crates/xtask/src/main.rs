//! CLI entry point:
//! `cargo xtask audit [--format text|json|sarif] [--root <dir>]
//! [--baseline <file>] [--update-baseline] [--allow-stale]
//! [--call-graph <file>[.dot]] [--explain <rule>]`.
//!
//! Exit codes: `0` clean (or all findings baselined), `1` new violations
//! or stale baseline entries without `--allow-stale`, `2` usage or I/O
//! error.

use std::path::PathBuf;
use std::process::ExitCode;

use xtask::baseline::{self, Baseline};
use xtask::docs;

/// Static usage header; the rule list is appended from the doc registry
/// so it can never drift from the engine.
const USAGE_HEAD: &str = "usage: cargo xtask audit [options]

Options:
  --format <text|json|sarif>  output format (default text); --json is an alias
  --root <dir>           workspace root to audit (default .)
  --baseline <file>      ratchet baseline: only findings NOT in the file fail
  --update-baseline      regenerate the baseline from current findings,
                         preserving `why` justifications (requires --baseline),
                         and exit 0
  --allow-stale          tolerate stale baseline entries (default: they fail
                         the gate so the ratchet can only shrink)
  --call-graph <file>    export the workspace call graph (JSON; a `.dot`
                         extension selects Graphviz DOT)
  --explain <rule>       print one rule's full documentation and exit

Runs the workspace static-analysis gate. Rules:";

/// Full usage text: header plus the registry-driven rule list.
fn usage() -> String {
    let mut s = String::from(USAGE_HEAD);
    let width = docs::RULE_DOCS.iter().map(|d| d.name.len()).max().unwrap_or(0);
    for d in docs::RULE_DOCS {
        s.push_str(&format!("\n  {:width$}  {}", d.name, d.short));
    }
    s.push_str("\n\nSuppress a single site with `// audit:allow(<rule>) — justification`.");
    s
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut update_baseline = false;
    let mut allow_stale = false;
    let mut call_graph: Option<PathBuf> = None;
    let mut explain: Option<String> = None;
    let mut command: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => match it.next().as_deref() {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                Some("sarif") => format = Format::Sarif,
                other => {
                    let got = other.unwrap_or("<missing>");
                    eprintln!(
                        "error: --format expects `text`, `json`, or `sarif`, got `{got}`\n\n{}",
                        usage()
                    );
                    return ExitCode::from(2);
                }
            },
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root requires a directory argument\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --baseline requires a file argument\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update_baseline = true,
            "--allow-stale" => allow_stale = true,
            "--call-graph" => match it.next() {
                Some(p) => call_graph = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --call-graph requires a file argument\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--explain" => match it.next() {
                Some(r) => explain = Some(r),
                None => {
                    eprintln!("error: --explain requires a rule name\n\n{}", usage());
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            _ if command.is_none() && !arg.starts_with('-') => command = Some(arg),
            _ => {
                eprintln!("error: unrecognized argument `{arg}`\n\n{}", usage());
                return ExitCode::from(2);
            }
        }
    }

    if command.as_deref() != Some("audit") {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    }
    if let Some(rule) = explain {
        return match docs::explain(&rule) {
            Some(text) => {
                println!("{text}");
                ExitCode::SUCCESS
            }
            None => {
                let known: Vec<&str> = docs::RULE_DOCS.iter().map(|d| d.name).collect();
                eprintln!("error: unknown rule `{rule}`; known rules: {}", known.join(", "));
                ExitCode::from(2)
            }
        };
    }
    if update_baseline && baseline_path.is_none() {
        eprintln!("error: --update-baseline requires --baseline <file>\n\n{}", usage());
        return ExitCode::from(2);
    }

    // Default root: the workspace directory `cargo xtask` runs from (cargo
    // sets the cwd to the invocation directory; the alias lives in the
    // workspace `.cargo/config.toml`, so this is the workspace root), or
    // CARGO_MANIFEST_DIR's grandparent when run via `cargo run -p xtask`.
    let root = root.unwrap_or_else(|| PathBuf::from("."));

    let report = match xtask::audit(&root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: audit failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = call_graph {
        let out = if path.extension().is_some_and(|e| e == "dot") {
            report.call_graph.to_dot()
        } else {
            report.call_graph.to_json()
        };
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("error: cannot write call graph `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("audit: call graph written to `{}`", path.display());
    }

    if update_baseline {
        let path = baseline_path.expect("checked above");
        let mut b = Baseline::from_diagnostics(&report.diagnostics);
        // Keep the written justifications of entries that survive.
        if let Ok(old) = Baseline::load(&path) {
            b.adopt_whys(&old);
        }
        if let Err(e) = b.save(&path) {
            eprintln!("error: cannot write baseline `{}`: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "audit: baseline `{}` updated ({} entr{})",
            path.display(),
            b.entries.len(),
            if b.entries.len() == 1 { "y" } else { "ies" }
        );
        return ExitCode::SUCCESS;
    }

    if let Some(path) = baseline_path {
        let b = match Baseline::load(&path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: cannot read baseline `{}`: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let gate = baseline::gate(&report.diagnostics, &b);
        let stale_fails = !gate.stale.is_empty() && !allow_stale;
        match format {
            Format::Json => println!("{}", report.to_json_gated(Some(&gate))),
            Format::Sarif => println!("{}", xtask::sarif::to_sarif(&report, Some((&gate, &b)))),
            Format::Text => {
                for &i in &gate.new {
                    println!("{}", report.diagnostics[i].render());
                }
                if !gate.stale.is_empty() {
                    println!(
                        "audit: {} stale baseline entr{} (fixed or moved){}",
                        gate.stale.len(),
                        if gate.stale.len() == 1 { "y" } else { "ies" },
                        if allow_stale {
                            "; tolerated by --allow-stale"
                        } else {
                            "; the ratchet only shrinks — run --update-baseline \
                             (or pass --allow-stale)"
                        }
                    );
                }
                if gate.new.is_empty() && !stale_fails {
                    println!(
                        "audit: clean ({} files scanned, {} baselined finding(s))",
                        report.files_scanned, gate.baselined
                    );
                } else {
                    println!(
                        "audit: {} new violation(s) ({} files scanned, {} baselined{})",
                        gate.new.len(),
                        report.files_scanned,
                        gate.baselined,
                        if stale_fails { ", stale baseline" } else { "" }
                    );
                }
            }
        }
        return if gate.new.is_empty() && !stale_fails {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }

    match format {
        Format::Json => println!("{}", report.to_json()),
        Format::Sarif => println!("{}", xtask::sarif::to_sarif(&report, None)),
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}", d.render());
            }
            if report.is_clean() {
                println!("audit: clean ({} files scanned)", report.files_scanned);
            } else {
                println!(
                    "audit: {} violation(s) ({} files scanned)",
                    report.diagnostics.len(),
                    report.files_scanned
                );
            }
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Output format selector.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    /// Human-readable `file:line: [rule] message` lines.
    Text,
    /// The audit's own JSON shape.
    Json,
    /// SARIF 2.1.0 for code-scanning upload.
    Sarif,
}
