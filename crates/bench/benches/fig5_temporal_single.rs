//! Fig 5: temporal correlation of the first window's knee bin over the
//! 15-month span, with the Gaussian / Cauchy / modified-Cauchy model
//! comparison (including the 1/2-norm vs 2-norm objective ablation from
//! DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};
use obscor_bench::{bench_nv, fixture};
use obscor_core::temporal::{fig5_curve, temporal_curves};
use obscor_stats::fit::{
    default_mc_alpha_grid, default_mc_beta_grid, fit_cauchy, fit_gaussian,
    fit_modified_cauchy_grid,
};
use obscor_stats::norms::residual_pnorm;
use obscor_stats::TemporalModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(bench_nv(), 42);
    let curves = temporal_curves(&f.degrees[0], &f.monthly_sources, 5);
    let curve = fig5_curve(&curves, &f.degrees[0].label, f.scenario.bright_log2())
        .or_else(|| curves.iter().max_by_key(|c| c.n_sources))
        .expect("at least one curve");

    let mc = fit_modified_cauchy_grid(
        &curve.lags,
        &curve.fractions,
        &default_mc_alpha_grid(),
        &default_mc_beta_grid(),
    )
    .expect("fittable curve");
    let g_fit = fit_gaussian(&curve.lags, &curve.fractions).unwrap();
    let c_fit = fit_cauchy(&curve.lags, &curve.fractions).unwrap();

    eprintln!("\n=== FIG 5 (regenerated) ===");
    eprintln!(
        "window {} bin d=2^{} ({} sources)",
        curve.window_label, curve.bin, curve.n_sources
    );
    eprintln!("  lag(mo)  fraction");
    for (lag, frac) in curve.lags.iter().zip(&curve.fractions) {
        eprintln!("  {lag:>7.2} {frac:>9.3}");
    }
    eprintln!(
        "modified Cauchy alpha={:.2} beta={:.2} residual={:.3}",
        mc.alpha, mc.beta, mc.residual
    );
    eprintln!("Cauchy          gamma={:.2} residual={:.3}", c_fit.param, c_fit.residual);
    eprintln!("Gaussian        sigma={:.2} residual={:.3}", g_fit.param, g_fit.residual);

    // Ablation: the same modified-Cauchy grid under a 2-norm objective.
    let two_norm_best = {
        let peak = curve.fractions.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut best = (f64::INFINITY, 0.0, 0.0);
        for &alpha in &default_mc_alpha_grid() {
            for &beta in &default_mc_beta_grid() {
                let m = TemporalModel::ModifiedCauchy { alpha, beta };
                let pred: Vec<f64> = curve.lags.iter().map(|&t| peak * m.eval(t)).collect();
                let r = residual_pnorm(&pred, &curve.fractions, 2.0);
                if r < best.0 {
                    best = (r, alpha, beta);
                }
            }
        }
        best
    };
    eprintln!(
        "ablation (2-norm objective): alpha={:.2} beta={:.2}",
        two_norm_best.1, two_norm_best.2
    );

    let mut group = c.benchmark_group("fig5");
    group.bench_function("temporal_curve_single_window", |b| {
        b.iter(|| black_box(temporal_curves(&f.degrees[0], &f.monthly_sources, 5)))
    });
    group.bench_function("modified_cauchy_grid_fit", |b| {
        b.iter(|| {
            black_box(fit_modified_cauchy_grid(
                &curve.lags,
                &curve.fractions,
                &default_mc_alpha_grid(),
                &default_mc_beta_grid(),
            ))
        })
    });
    group.bench_function("gaussian_fit", |b| {
        b.iter(|| black_box(fit_gaussian(&curve.lags, &curve.fractions)))
    });
    group.bench_function("cauchy_fit", |b| {
        b.iter(|| black_box(fit_cauchy(&curve.lags, &curve.fractions)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
