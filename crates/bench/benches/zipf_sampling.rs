//! Substrate bench: Zipf–Mandelbrot sampling and alias-table draws — the
//! inner loop of synthetic packet emission.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use obscor_stats::zipf::ZipfMandelbrot;
use obscor_stats::AliasTable;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let zm = ZipfMandelbrot::new(1.3, 2.0, 1 << 14);
    let weights: Vec<f64> = (1..=200_000).map(|i| 1.0 / (i as f64).powf(1.3)).collect();
    let alias = AliasTable::new(&weights);

    c.bench_function("zipf/construct_2^14", |b| {
        b.iter(|| black_box(ZipfMandelbrot::new(1.3, 2.0, 1 << 14)))
    });

    let mut g = c.benchmark_group("sampling");
    let n = 100_000usize;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("zipf_inverse_cdf_100k", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(zm.sample_n(&mut rng, n)))
    });
    g.bench_function("alias_table_100k", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| black_box(alias.sample_n(&mut rng, n)))
    });
    g.finish();

    c.bench_function("alias/construct_200k", |b| {
        b.iter(|| black_box(AliasTable::new(&weights)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
