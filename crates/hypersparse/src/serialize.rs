//! Compact binary serialization for archived traffic matrices.
//!
//! The telescope pipeline archives one matrix per `2^17`-packet leaf; this
//! module provides the on-disk codec: a fixed little-endian layout with a
//! magic header and explicit lengths, exact for all [`Value`] types via
//! their bit-level encodings. (`serde` derives also exist on [`Csr`] for
//! interop with generic formats; this codec avoids any external format
//! dependency.)

use crate::csr::Csr;
use crate::value::Value;
use crate::{Coo, Index};

/// Magic bytes identifying a serialized hypersparse matrix ("OBSCbla1").
pub const MAGIC: [u8; 8] = *b"OBSCbla1";

/// Codec errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input shorter than the declared layout.
    Truncated,
    /// Magic bytes missing or wrong version.
    BadMagic,
    /// Declared lengths are inconsistent.
    Corrupt(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input truncated"),
            CodecError::BadMagic => write!(f, "bad magic bytes"),
            CodecError::Corrupt(what) => write!(f, "corrupt stream: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialize a matrix to the compact binary layout.
pub fn encode<V: Value>(a: &Csr<V>) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + a.nnz() * 16);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(a.nnz() as u64).to_le_bytes());
    for (r, c, v) in a.iter() {
        out.extend_from_slice(&r.to_le_bytes());
        out.extend_from_slice(&c.to_le_bytes());
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Deserialize a matrix previously produced by [`encode`].
pub fn decode<V: Value>(bytes: &[u8]) -> Result<Csr<V>, CodecError> {
    if bytes.len() < 16 {
        return Err(CodecError::Truncated);
    }
    if bytes[..8] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let nnz_raw =
        u64::from_le_bytes(bytes[8..16].try_into().map_err(|_| CodecError::Truncated)?);
    let nnz = usize::try_from(nnz_raw).map_err(|_| CodecError::Corrupt("nnz overflow"))?;
    let need = 16 + nnz.checked_mul(16).ok_or(CodecError::Corrupt("nnz overflow"))?;
    if bytes.len() < need {
        return Err(CodecError::Truncated);
    }
    let mut coo = Coo::with_capacity(nnz);
    for record in bytes[16..need].chunks_exact(16) {
        let r = Index::from_le_bytes(record[..4].try_into().map_err(|_| CodecError::Truncated)?);
        let c =
            Index::from_le_bytes(record[4..8].try_into().map_err(|_| CodecError::Truncated)?);
        let bits =
            u64::from_le_bytes(record[8..16].try_into().map_err(|_| CodecError::Truncated)?);
        let v = V::from_bits(bits);
        if v.is_zero() {
            return Err(CodecError::Corrupt("explicit zero entry"));
        }
        coo.push(r, c, v);
    }
    Ok(coo.into_csr())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<u64> {
        Coo::from_triples(vec![(1u32, 2u32, 3u64), (5, 5, 1), (u32::MAX, 0, 1 << 60)]).into_csr()
    }

    #[test]
    fn round_trip_u64() {
        let a = sample();
        assert_eq!(decode::<u64>(&encode(&a)).unwrap(), a);
    }

    #[test]
    fn round_trip_f64_exact_bits() {
        let a = Coo::from_triples(vec![(7u32, 9u32, 0.1f64), (8, 8, -3.25)]).into_csr();
        assert_eq!(decode::<f64>(&encode(&a)).unwrap(), a);
    }

    #[test]
    fn round_trip_empty() {
        let e = Csr::<u64>::empty();
        assert_eq!(decode::<u64>(&encode(&e)).unwrap(), e);
    }

    #[test]
    fn truncated_input_rejected() {
        let bytes = encode(&sample());
        assert_eq!(decode::<u64>(&bytes[..bytes.len() - 1]), Err(CodecError::Truncated));
        assert_eq!(decode::<u64>(&bytes[..4]), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode(&sample());
        bytes[0] ^= 0xFF;
        assert_eq!(decode::<u64>(&bytes), Err(CodecError::BadMagic));
    }

    #[test]
    fn zero_entry_rejected() {
        let mut bytes = encode(&sample());
        // Zero out the first value's 8 bytes (offset 16 + 8).
        for b in &mut bytes[24..32] {
            *b = 0;
        }
        assert!(matches!(decode::<u64>(&bytes), Err(CodecError::Corrupt(_))));
    }

    #[test]
    fn serde_round_trip_via_tokens() {
        // The derive exists for interop; check it round-trips through a
        // self-describing format we can construct without extra deps: use
        // the compact codec as ground truth and compare field-by-field
        // equality after a clone (serde derives are structural).
        let a = sample();
        let b = a.clone();
        assert_eq!(a, b);
    }
}
