//! Substrate bench: synthetic packet generation, windowing, and the
//! libpcap codec at capture rates.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use obscor_bench::fixture;
use obscor_netmodel::{PacketStream, TrafficConfig};
use obscor_pcap::{AcceptAll, ConstantPacketWindower, PcapReader, PcapWriter};
use obscor_telescope::capture_window;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(1 << 16, 42);
    let scenario = &f.scenario;

    let mut g = c.benchmark_group("window_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(scenario.n_v as u64));

    g.bench_function("packet_generation_raw", |b| {
        b.iter(|| {
            let rng = StdRng::seed_from_u64(1);
            let stream = PacketStream::at_instant(
                &scenario.population,
                7.0,
                TrafficConfig::default(),
                0,
                rng,
            );
            let count = stream.take(scenario.n_v).count();
            black_box(count)
        })
    });

    g.bench_function("windower", |b| {
        b.iter(|| {
            let rng = StdRng::seed_from_u64(1);
            let stream = PacketStream::at_instant(
                &scenario.population,
                7.0,
                TrafficConfig::default(),
                0,
                rng,
            );
            let mut w = ConstantPacketWindower::new(stream, AcceptAll, scenario.n_v);
            black_box(w.next())
        })
    });

    g.bench_function("capture_window_end_to_end", |b| {
        b.iter(|| black_box(capture_window(scenario, &scenario.caida_windows[0])))
    });

    let w = capture_window(scenario, &scenario.caida_windows[0]);
    g.bench_function("pcap_write", |b| {
        b.iter(|| {
            let mut writer = PcapWriter::new();
            for p in &w.window.packets {
                writer.write_packet(p);
            }
            black_box(writer.into_bytes())
        })
    });
    let bytes = {
        let mut writer = PcapWriter::new();
        for p in &w.window.packets {
            writer.write_packet(p);
        }
        writer.into_bytes()
    };
    g.bench_function("pcap_parse_and_verify_checksums", |b| {
        b.iter(|| black_box(PcapReader::new(&bytes).unwrap().read_all().unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
