//! Substrate bench: D4M associative-array operations at honeyfarm-month
//! scale — key-set intersection is the paper's core correlation primitive.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use obscor_assoc::convert::ip_key;
use obscor_assoc::{Assoc, KeySet};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn random_keys(n: usize, seed: u64) -> KeySet {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| ip_key(rng.random())).collect()
}

fn bench(c: &mut Criterion) {
    let n = 100_000;
    let a = random_keys(n, 1);
    let b2 = random_keys(n, 2);

    let mut g = c.benchmark_group("assoc_ops");
    g.sample_size(20);
    g.throughput(Throughput::Elements(n as u64));

    g.bench_function("keyset_intersect", |b| b.iter(|| black_box(a.intersect(&b2))));
    g.bench_function("keyset_union", |b| b.iter(|| black_box(a.union(&b2))));
    g.bench_function("keyset_minus", |b| b.iter(|| black_box(a.minus(&b2))));
    g.bench_function("overlap_fraction", |b| {
        b.iter(|| black_box(a.overlap_fraction(&b2)))
    });

    // Assoc construction + row selection at month scale.
    let triples: Vec<(String, String, String)> = a
        .iter()
        .map(|k| (k.to_string(), "class".to_string(), "scanner".to_string()))
        .collect();
    g.bench_function("assoc_from_triples", |b| {
        b.iter(|| black_box(Assoc::from_triples_last(triples.clone())))
    });
    let assoc = Assoc::from_triples_last(triples.clone());
    let keep = random_keys(n / 10, 3);
    g.bench_function("assoc_row_select", |b| b.iter(|| black_box(assoc.rows(&keep))));
    g.bench_function("assoc_prefix_select", |b| {
        b.iter(|| black_box(assoc.rows_with_prefix("044.")))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
