//! The detection model: who does the honeyfarm see in a month?
//!
//! The only published constraint on GreyNoise's per-source detection
//! efficiency is the paper's own Fig 4: during the same month, CAIDA
//! sources brighter than `sqrt(N_V)` window packets are nearly always in
//! the GreyNoise set, and below the knee the probability follows
//! `log2(d) / log2(sqrt(N_V))`. That empirical law is encoded here as the
//! sensor efficiency — the measurement pipeline must then *recover* it
//! from the two raw observation sets (Fig 4), and its interaction with the
//! drifting beam produces the temporal curves (Figs 5-8).

use obscor_netmodel::Source;

/// Brightness-dependent detection efficiency with per-month coverage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectionModel {
    /// `log2(sqrt(N_V))` — the knee of the efficiency curve in expected
    /// window-degree units.
    pub bright_log2: f64,
    /// Conversion from planted brightness to expected window degree.
    pub brightness_to_degree: f64,
}

impl DetectionModel {
    /// Build from the scenario's calibration values.
    ///
    /// # Panics
    /// Panics unless `bright_log2 > 0` and `brightness_to_degree > 0`.
    pub fn new(bright_log2: f64, brightness_to_degree: f64) -> Self {
        assert!(bright_log2 > 0.0, "bright_log2 must be positive");
        assert!(brightness_to_degree > 0.0, "degree conversion must be positive");
        Self { bright_log2, brightness_to_degree }
    }

    /// The base efficiency for a source of planted brightness `b`:
    /// `min(1, log2(d_expected) / log2(sqrt(N_V)))`, clamped at 0 for
    /// sub-unit expected degrees.
    pub fn efficiency(&self, brightness: f64) -> f64 {
        let d = (brightness * self.brightness_to_degree).max(1.0);
        (d.log2() / self.bright_log2).clamp(0.0, 1.0)
    }

    /// The probability that `source` appears in the honeyfarm's set for
    /// the month `[lo, hi)`, given that month's `coverage` boost.
    ///
    /// Active sources are detected with the boosted efficiency; inactive
    /// ones reappear with the source's background revisit probability
    /// (times efficiency), producing the long-lag floor of Fig 5.
    pub fn monthly_probability(
        &self,
        source: &Source,
        lo: f64,
        hi: f64,
        coverage: f64,
    ) -> f64 {
        let eff = (self.efficiency(source.brightness) * coverage).clamp(0.0, 1.0);
        if source.interval.overlaps(lo, hi) {
            eff
        } else {
            (source.revisit_prob * eff * coverage.max(1.0)).clamp(0.0, 1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obscor_netmodel::{ActivityInterval, SourceClass};
    use obscor_pcap::Ip4;

    fn model() -> DetectionModel {
        // N_V = 2^22: bright_log2 = 11.
        DetectionModel::new(11.0, 1.0)
    }

    fn source(brightness: f64, birth: f64, end: f64) -> Source {
        Source {
            ip: Ip4(0x01020304),
            brightness,
            class: SourceClass::Scanner,
            interval: ActivityInterval::new(birth, end),
            revisit_prob: 0.03,
        }
    }

    #[test]
    fn efficiency_follows_the_log_law() {
        let m = model();
        // Bright sources (d >= 2^11) are always detected.
        assert_eq!(m.efficiency(4096.0), 1.0);
        assert_eq!(m.efficiency(1.0e9), 1.0);
        // The faint side follows log2(d)/11.
        assert!((m.efficiency(2.0_f64.powi(5)) - 5.0 / 11.0).abs() < 1e-12);
        assert!((m.efficiency(2.0_f64.powi(8)) - 8.0 / 11.0).abs() < 1e-12);
        // Degree-1 sources are (almost) never detected.
        assert_eq!(m.efficiency(1.0), 0.0);
    }

    #[test]
    fn efficiency_uses_the_degree_conversion() {
        let m = DetectionModel::new(11.0, 4.0);
        // brightness 2^9 -> expected degree 2^11 -> efficiency 1.
        assert_eq!(m.efficiency(512.0), 1.0);
    }

    #[test]
    fn active_sources_use_full_efficiency() {
        let m = model();
        let s = source(2048.0, 0.0, 15.0);
        assert_eq!(m.monthly_probability(&s, 4.0, 5.0, 1.0), 1.0);
    }

    #[test]
    fn inactive_sources_fall_to_revisit_floor() {
        let m = model();
        let s = source(2048.0, 0.0, 3.0);
        let p = m.monthly_probability(&s, 10.0, 11.0, 1.0);
        assert!((p - 0.03).abs() < 1e-12, "floor {p}");
    }

    #[test]
    fn partial_overlap_counts_as_active() {
        let m = model();
        let s = source(2048.0, 4.9, 5.05);
        assert_eq!(m.monthly_probability(&s, 4.0, 5.0, 1.0), 1.0);
        assert_eq!(m.monthly_probability(&s, 5.0, 6.0, 1.0), 1.0);
        assert!((m.monthly_probability(&s, 6.0, 7.0, 1.0) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn coverage_boost_raises_faint_detection() {
        let m = model();
        let s = source(16.0, 0.0, 15.0); // efficiency 4/11
        let base = m.monthly_probability(&s, 4.0, 5.0, 1.0);
        let boosted = m.monthly_probability(&s, 4.0, 5.0, 2.0);
        assert!((base - 4.0 / 11.0).abs() < 1e-12);
        assert!((boosted - 8.0 / 11.0).abs() < 1e-12);
        // But it saturates at certainty.
        assert_eq!(m.monthly_probability(&s, 4.0, 5.0, 100.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_model_rejected() {
        let _ = DetectionModel::new(0.0, 1.0);
    }
}
