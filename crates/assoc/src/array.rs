//! The associative array itself.

use crate::keys::KeySet;
use serde::{Deserialize, Serialize};

/// A sparse 2-D array indexed by sorted string keys on both axes.
///
/// Stored in CSR over positional indices into the two [`KeySet`]s. Every
/// row key and column key present in the key sets is guaranteed to carry at
/// least one entry (construction prunes unused keys), so `n_rows`/`n_cols`
/// count *occupied* axes exactly — matching D4M, where the row set of a
/// honeyfarm month *is* the set of observed sources.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Assoc<V: Clone + PartialEq> {
    row_keys: KeySet,
    col_keys: KeySet,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    vals: Vec<V>,
}

impl<V: Clone + PartialEq> Assoc<V> {
    /// The empty array.
    pub fn new() -> Self {
        Self {
            row_keys: KeySet::new(),
            col_keys: KeySet::new(),
            row_ptr: vec![0],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from `(row, col, value)` triples; on duplicate coordinates the
    /// *last* triple wins (D4M assignment semantics).
    pub fn from_triples_last(triples: Vec<(String, String, V)>) -> Self {
        Self::from_triples_with(triples, |_, new| new)
    }

    /// Build from triples, combining duplicate coordinates with `combine`
    /// (`combine(existing, new)`).
    pub fn from_triples_with(
        mut triples: Vec<(String, String, V)>,
        combine: impl Fn(V, V) -> V,
    ) -> Self {
        // Stable sort so that "last wins" is well defined for equal keys.
        triples.sort_by(|a, b| (a.0.as_str(), a.1.as_str()).cmp(&(b.0.as_str(), b.1.as_str())));
        let mut merged: Vec<(String, String, V)> = Vec::with_capacity(triples.len());
        for (r, c, v) in triples {
            match merged.last_mut() {
                Some((lr, lc, lv)) if *lr == r && *lc == c => {
                    let old = lv.clone();
                    *lv = combine(old, v);
                }
                _ => merged.push((r, c, v)),
            }
        }
        Self::from_sorted_dedup(merged)
    }

    fn from_sorted_dedup(triples: Vec<(String, String, V)>) -> Self {
        let row_keys: KeySet = triples.iter().map(|(r, _, _)| r.clone()).collect();
        let col_keys: KeySet = triples.iter().map(|(_, c, _)| c.clone()).collect();
        let mut row_ptr = Vec::with_capacity(row_keys.len() + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::with_capacity(triples.len());
        let mut vals = Vec::with_capacity(triples.len());
        let mut cur_row = 0usize;
        for (r, c, v) in &triples {
            // audit:allow(panic-path) — row_keys was built from these same triples, so lookup cannot fail
            let ri = row_keys.index_of(r).expect("row key present");
            while cur_row < ri {
                row_ptr.push(col_idx.len());
                cur_row += 1;
            }
            // audit:allow(panic-path) — col_keys was built from these same triples, so lookup cannot fail
            col_idx.push(col_keys.index_of(c).expect("col key present"));
            vals.push(v.clone());
        }
        while row_ptr.len() < row_keys.len() + 1 {
            row_ptr.push(col_idx.len());
        }
        let assoc = Self { row_keys, col_keys, row_ptr, col_idx, vals };
        #[cfg(feature = "strict-invariants")]
        {
            if let Err(msg) = assoc.check_invariants() {
                // audit:allow(panic-path) — strict-invariants mode aborts on broken invariants by contract
                panic!("triple construction produced an invalid Assoc: {msg}");
            }
        }
        assoc
    }

    /// Internal consistency check: sorted unique keys on both axes,
    /// monotone row pointers with correct endpoints, strictly increasing
    /// in-row column indices, and every axis key occupied. Used by tests
    /// and the pipeline's `strict-invariants` stage checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        self.row_keys.check_invariants().map_err(|e| format!("row_keys: {e}"))?;
        self.col_keys.check_invariants().map_err(|e| format!("col_keys: {e}"))?;
        if self.row_ptr.len() != self.row_keys.len() + 1 {
            return Err("row_ptr length mismatch".into());
        }
        if self.row_ptr.first().copied() != Some(0)
            || self.row_ptr.last().copied() != Some(self.vals.len())
        {
            return Err("row_ptr endpoints wrong".into());
        }
        if self.col_idx.len() != self.vals.len() {
            return Err("col_idx/vals length mismatch".into());
        }
        for w in self.row_ptr.windows(2) {
            if w[0] > w[1] {
                return Err("row_ptr not monotone".into());
            }
        }
        for (ri, w) in self.row_ptr.windows(2).enumerate() {
            if w[0] == w[1] {
                return Err(format!("row {ri} has no entries (unused key not pruned)"));
            }
            let row = &self.col_idx[w[0]..w[1]];
            for pair in row.windows(2) {
                if pair[0] >= pair[1] {
                    return Err(format!("col_idx not strictly increasing in row {ri}"));
                }
            }
            if row.last().is_some_and(|&c| c >= self.col_keys.len()) {
                return Err(format!("col_idx out of range in row {ri}"));
            }
        }
        // Every column key must be referenced at least once.
        let mut seen = vec![false; self.col_keys.len()];
        for &c in &self.col_idx {
            seen[c] = true;
        }
        if seen.iter().any(|&s| !s) {
            return Err("unused column key not pruned".into());
        }
        Ok(())
    }

    /// Number of occupied rows.
    pub fn n_rows(&self) -> usize {
        self.row_keys.len()
    }

    /// Number of occupied columns.
    pub fn n_cols(&self) -> usize {
        self.col_keys.len()
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Whether the array stores nothing.
    pub fn is_empty(&self) -> bool {
        self.nnz() == 0
    }

    /// The sorted row key set (for a honeyfarm month: the observed sources).
    pub fn row_keys(&self) -> &KeySet {
        &self.row_keys
    }

    /// The sorted column key set.
    pub fn col_keys(&self) -> &KeySet {
        &self.col_keys
    }

    /// Point lookup.
    pub fn get(&self, row: &str, col: &str) -> Option<&V> {
        let ri = self.row_keys.index_of(row)?;
        let ci = self.col_keys.index_of(col)?;
        let lo = self.row_ptr[ri];
        let hi = self.row_ptr[ri + 1];
        let j = self.col_idx[lo..hi].binary_search(&ci).ok()?;
        Some(&self.vals[lo + j])
    }

    /// Iterate `(row_key, col_key, value)` in row-major key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str, &V)> + '_ {
        (0..self.n_rows()).flat_map(move |ri| {
            let lo = self.row_ptr[ri];
            let hi = self.row_ptr[ri + 1];
            (lo..hi).map(move |k| {
                (self.row_keys.key(ri), self.col_keys.key(self.col_idx[k]), &self.vals[k])
            })
        })
    }

    /// Entries of one row as `(col_key, value)` pairs.
    pub fn row(&self, row: &str) -> Vec<(&str, &V)> {
        match self.row_keys.index_of(row) {
            None => Vec::new(),
            Some(ri) => {
                let lo = self.row_ptr[ri];
                let hi = self.row_ptr[ri + 1];
                (lo..hi)
                    .map(|k| (self.col_keys.key(self.col_idx[k]), &self.vals[k]))
                    .collect()
            }
        }
    }

    /// Sub-array restricted to rows whose keys are in `keep`.
    pub fn rows(&self, keep: &KeySet) -> Assoc<V> {
        self.filter(|r, _c| keep.contains(r))
    }

    /// Sub-array restricted to rows whose keys start with `prefix`.
    pub fn rows_with_prefix(&self, prefix: &str) -> Assoc<V> {
        self.filter(|r, _c| r.starts_with(prefix))
    }

    /// Sub-array restricted to columns whose keys are in `keep`.
    pub fn cols(&self, keep: &KeySet) -> Assoc<V> {
        self.filter(|_r, c| keep.contains(c))
    }

    /// Generic entry filter; prunes emptied keys from both axes.
    pub fn filter(&self, pred: impl Fn(&str, &str) -> bool) -> Assoc<V> {
        let triples: Vec<(String, String, V)> = self
            .iter()
            .filter(|(r, c, _)| pred(r, c))
            .map(|(r, c, v)| (r.to_string(), c.to_string(), v.clone()))
            .collect();
        Assoc::from_sorted_dedup(triples)
    }

    /// Transpose.
    pub fn transpose(&self) -> Assoc<V> {
        let triples: Vec<(String, String, V)> = self
            .iter()
            .map(|(r, c, v)| (c.to_string(), r.to_string(), v.clone()))
            .collect();
        Assoc::from_triples_last(triples)
    }

    /// Element-wise combine on the *intersection* of stored entries
    /// (D4M `&`): the result holds `f(a, b)` exactly where both arrays
    /// store a value.
    pub fn and_then<W: Clone + PartialEq, U: Clone + PartialEq>(
        &self,
        other: &Assoc<W>,
        f: impl Fn(&V, &W) -> U,
    ) -> Assoc<U> {
        let mut triples = Vec::new();
        for (r, c, v) in self.iter() {
            if let Some(w) = other.get(r, c) {
                triples.push((r.to_string(), c.to_string(), f(v, w)));
            }
        }
        Assoc::from_sorted_dedup(triples)
    }

    /// Element-wise combine on the *union* of stored entries (D4M `|`):
    /// missing sides are passed as `None`.
    pub fn or_else<U: Clone + PartialEq>(
        &self,
        other: &Assoc<V>,
        f: impl Fn(Option<&V>, Option<&V>) -> U,
    ) -> Assoc<U> {
        let mut triples = Vec::new();
        for (r, c, v) in self.iter() {
            triples.push((r.to_string(), c.to_string(), f(Some(v), other.get(r, c))));
        }
        for (r, c, w) in other.iter() {
            if self.get(r, c).is_none() {
                triples.push((r.to_string(), c.to_string(), f(None, Some(w))));
            }
        }
        Assoc::from_triples_last(triples)
    }

    /// Map values, keeping the pattern.
    pub fn map<U: Clone + PartialEq>(&self, f: impl Fn(&V) -> U) -> Assoc<U> {
        let triples: Vec<(String, String, U)> = self
            .iter()
            .map(|(r, c, v)| (r.to_string(), c.to_string(), f(v)))
            .collect();
        Assoc::from_sorted_dedup(triples)
    }

    /// The keys of rows whose value at `col` satisfies `pred` (D4M's
    /// value-conditional row selection, e.g. *sources classified as
    /// scanners*). Rows without a value at `col` never match.
    pub fn rows_where(&self, col: &str, pred: impl Fn(&V) -> bool) -> KeySet {
        let keys: Vec<String> = (0..self.n_rows())
            .filter(|&ri| {
                self.get(self.row_keys.key(ri), col).map(&pred).unwrap_or(false)
            })
            .map(|ri| self.row_keys.key(ri).to_string())
            .collect();
        KeySet::from_sorted_unique(keys)
    }

    /// Per-row entry counts (fan-out in D4M terms).
    pub fn row_degrees(&self) -> Vec<(&str, usize)> {
        (0..self.n_rows())
            .map(|ri| (self.row_keys.key(ri), self.row_ptr[ri + 1] - self.row_ptr[ri]))
            .collect()
    }

    /// Per-column entry counts (fan-in in D4M terms).
    pub fn col_degrees(&self) -> Vec<(&str, usize)> {
        let mut counts = vec![0usize; self.n_cols()];
        for &ci in &self.col_idx {
            counts[ci] += 1;
        }
        counts
            .into_iter()
            .enumerate()
            .map(|(ci, n)| (self.col_keys.key(ci), n))
            .collect()
    }

    /// Sub-array restricted to columns whose keys start with `prefix`.
    pub fn cols_with_prefix(&self, prefix: &str) -> Assoc<V> {
        self.filter(|_r, c| c.starts_with(prefix))
    }
}

impl Assoc<f64> {
    /// Per-row value sums (`A 1` in D4M/GraphBLAS terms).
    pub fn row_sums(&self) -> Vec<(&str, f64)> {
        (0..self.n_rows())
            .map(|ri| {
                let lo = self.row_ptr[ri];
                let hi = self.row_ptr[ri + 1];
                (self.row_keys.key(ri), self.vals[lo..hi].iter().sum())
            })
            .collect()
    }

    /// Total of all stored values.
    pub fn total(&self) -> f64 {
        self.vals.iter().sum()
    }

    /// Build from triples, summing duplicates (packet accumulation).
    pub fn from_triples_sum(triples: Vec<(String, String, f64)>) -> Self {
        Self::from_triples_with(triples, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(r: &str, c: &str, v: &str) -> (String, String, String) {
        (r.into(), c.into(), v.into())
    }

    fn sample() -> Assoc<String> {
        Assoc::from_triples_last(vec![
            t("1.1.1.1", "class", "scanner"),
            t("1.1.1.1", "proto", "tcp"),
            t("2.2.2.2", "class", "botnet"),
            t("9.9.9.9", "class", "benign"),
        ])
    }

    #[test]
    fn construction_and_lookup() {
        let a = sample();
        assert_eq!(a.n_rows(), 3);
        assert_eq!(a.n_cols(), 2);
        assert_eq!(a.nnz(), 4);
        assert_eq!(a.get("1.1.1.1", "proto"), Some(&"tcp".to_string()));
        assert_eq!(a.get("1.1.1.1", "nope"), None);
        assert_eq!(a.get("3.3.3.3", "class"), None);
    }

    #[test]
    fn last_wins_on_duplicates() {
        let a = Assoc::from_triples_last(vec![
            t("r", "c", "first"),
            t("r", "c", "second"),
        ]);
        assert_eq!(a.get("r", "c"), Some(&"second".to_string()));
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn sum_combines_duplicates() {
        let a = Assoc::from_triples_sum(vec![
            ("r".into(), "c".into(), 2.0),
            ("r".into(), "c".into(), 3.0),
        ]);
        assert_eq!(a.get("r", "c"), Some(&5.0));
    }

    #[test]
    fn iter_is_key_ordered() {
        let a = sample();
        let rows: Vec<&str> = a.iter().map(|(r, _, _)| r).collect();
        assert_eq!(rows, vec!["1.1.1.1", "1.1.1.1", "2.2.2.2", "9.9.9.9"]);
    }

    #[test]
    fn row_selection() {
        let a = sample();
        let keep: KeySet = ["1.1.1.1", "9.9.9.9"].iter().copied().collect();
        let sub = a.rows(&keep);
        assert_eq!(sub.n_rows(), 2);
        assert_eq!(sub.nnz(), 3);
        // Unused column keys are pruned.
        assert_eq!(sub.n_cols(), 2);
    }

    #[test]
    fn prefix_selection_prunes_axes() {
        let a = sample();
        let sub = a.rows_with_prefix("2.");
        assert_eq!(sub.n_rows(), 1);
        assert_eq!(sub.n_cols(), 1); // only "class" survives
    }

    #[test]
    fn transpose_round_trip() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get("class", "2.2.2.2"), Some(&"botnet".to_string()));
    }

    #[test]
    fn and_then_intersects() {
        let a = sample();
        let b = Assoc::from_triples_last(vec![t("1.1.1.1", "class", "x"), t("8.8.8.8", "class", "y")]);
        let c = a.and_then(&b, |v, w| format!("{v}/{w}"));
        assert_eq!(c.nnz(), 1);
        assert_eq!(c.get("1.1.1.1", "class"), Some(&"scanner/x".to_string()));
    }

    #[test]
    fn or_else_unions() {
        let a = Assoc::from_triples_last(vec![t("r1", "c", "a")]);
        let b = Assoc::from_triples_last(vec![t("r2", "c", "b")]);
        let c = a.or_else(&b, |x, y| {
            format!("{}{}", x.map(|s| s.as_str()).unwrap_or("-"), y.map(|s| s.as_str()).unwrap_or("-"))
        });
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get("r1", "c"), Some(&"a-".to_string()));
        assert_eq!(c.get("r2", "c"), Some(&"-b".to_string()));
    }

    #[test]
    fn row_degrees_and_sums() {
        let a = sample();
        let deg: Vec<usize> = a.row_degrees().into_iter().map(|(_, d)| d).collect();
        assert_eq!(deg, vec![2, 1, 1]);
        let n = Assoc::from_triples_sum(vec![
            ("r".into(), "c1".into(), 1.5),
            ("r".into(), "c2".into(), 2.5),
        ]);
        assert_eq!(n.row_sums(), vec![("r", 4.0)]);
        assert_eq!(n.total(), 4.0);
    }

    #[test]
    fn rows_where_selects_by_value() {
        let a = sample();
        let scanners = a.rows_where("class", |v| v == "scanner");
        assert_eq!(scanners.as_slice(), &["1.1.1.1"]);
        let with_proto = a.rows_where("proto", |_| true);
        assert_eq!(with_proto.as_slice(), &["1.1.1.1"]);
        let none = a.rows_where("class", |v| v == "nothing");
        assert!(none.is_empty());
        let missing_col = a.rows_where("nonexistent", |_| true);
        assert!(missing_col.is_empty());
    }

    #[test]
    fn empty_array() {
        let e = Assoc::<String>::new();
        assert!(e.is_empty());
        assert_eq!(e.n_rows(), 0);
        assert_eq!(e.iter().count(), 0);
        assert_eq!(e.transpose(), e);
    }

    #[test]
    fn col_degrees_count_fan_in() {
        let a = sample();
        let deg: std::collections::HashMap<&str, usize> =
            a.col_degrees().into_iter().collect();
        assert_eq!(deg["class"], 3);
        assert_eq!(deg["proto"], 1);
        // Column degrees sum to nnz, like row degrees.
        let total: usize = a.col_degrees().into_iter().map(|(_, n)| n).sum();
        assert_eq!(total, a.nnz());
    }

    #[test]
    fn cols_with_prefix_selects_columns() {
        let a = sample();
        let sub = a.cols_with_prefix("cl");
        assert_eq!(sub.n_cols(), 1);
        assert_eq!(sub.nnz(), 3);
        assert!(a.cols_with_prefix("zz").is_empty());
    }

    #[test]
    fn map_preserves_pattern() {
        let a = sample();
        let lens = a.map(|v| v.len() as f64);
        assert_eq!(lens.nnz(), a.nnz());
        assert_eq!(lens.get("2.2.2.2", "class"), Some(&6.0));
    }
}
