//! Sorted string key sets with set algebra.
//!
//! Row/column axes of an associative array, and the carrier of the paper's
//! correlation primitive: the intersection of a telescope window's source
//! set with a honeyfarm month's source set.

use serde::{Deserialize, Serialize};

/// A sorted, deduplicated set of string keys supporting binary-search
/// lookup and linear-merge set algebra.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeySet {
    keys: Vec<String>,
}

impl KeySet {
    /// The empty key set.
    pub fn new() -> Self {
        Self { keys: Vec::new() }
    }

    /// Build from any iterator of keys; sorts and deduplicates.
    ///
    /// Also reachable through the `FromIterator` impls below; the inherent
    /// name stays because it reads better at call sites that build sets
    /// explicitly.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut keys: Vec<String> = iter.into_iter().collect();
        keys.sort_unstable();
        keys.dedup();
        Self { keys }
    }

    /// Build from keys known to be sorted and unique (checked in debug).
    pub fn from_sorted_unique(keys: Vec<String>) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted unique");
        Self { keys }
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sorted keys as a slice.
    pub fn as_slice(&self) -> &[String] {
        &self.keys
    }

    /// Positional index of `key`, if present.
    pub fn index_of(&self, key: &str) -> Option<usize> {
        self.keys.binary_search_by(|k| k.as_str().cmp(key)).ok()
    }

    /// Membership test.
    pub fn contains(&self, key: &str) -> bool {
        self.index_of(key).is_some()
    }

    /// Key at position `i`.
    pub fn key(&self, i: usize) -> &str {
        &self.keys[i]
    }

    /// Iterate over keys in order.
    pub fn iter(&self) -> impl Iterator<Item = &str> + '_ {
        self.keys.iter().map(|s| s.as_str())
    }

    /// Set intersection by linear merge: `O(|a| + |b|)`.
    pub fn intersect(&self, other: &KeySet) -> KeySet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() && j < other.keys.len() {
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(self.keys[i].clone());
                    i += 1;
                    j += 1;
                }
            }
        }
        KeySet { keys: out }
    }

    /// Set union by linear merge.
    pub fn union(&self, other: &KeySet) -> KeySet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        loop {
            match (self.keys.get(i), other.keys.get(j)) {
                (Some(a), Some(b)) => match a.cmp(b) {
                    std::cmp::Ordering::Less => {
                        out.push(a.clone());
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        out.push(b.clone());
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        out.push(a.clone());
                        i += 1;
                        j += 1;
                    }
                },
                (Some(a), None) => {
                    out.push(a.clone());
                    i += 1;
                }
                (None, Some(b)) => {
                    out.push(b.clone());
                    j += 1;
                }
                // Both sides exhausted: the merge is complete.
                (None, None) => break,
            }
        }
        KeySet { keys: out }
    }

    /// Set difference `self \ other` by linear merge.
    pub fn minus(&self, other: &KeySet) -> KeySet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.keys.len() {
            if j >= other.keys.len() {
                out.extend(self.keys[i..].iter().cloned());
                break;
            }
            match self.keys[i].cmp(&other.keys[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.keys[i].clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        KeySet { keys: out }
    }

    /// The fraction of `self`'s keys also present in `other` — the paper's
    /// correlation measure. Returns `None` for an empty `self`.
    pub fn overlap_fraction(&self, other: &KeySet) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        Some(self.intersect(other).len() as f64 / self.len() as f64)
    }

    /// Internal consistency check: keys must be strictly increasing (sorted
    /// and unique). Used by tests and the pipeline's `strict-invariants`
    /// stage checks.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.keys.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("keys not strictly increasing at `{}` >= `{}`", w[0], w[1]));
            }
        }
        Ok(())
    }

    /// Keys with the given prefix (contiguous range via binary search).
    pub fn with_prefix(&self, prefix: &str) -> KeySet {
        let start = self.keys.partition_point(|k| k.as_str() < prefix);
        let mut end = start;
        while end < self.keys.len() && self.keys[end].starts_with(prefix) {
            end += 1;
        }
        KeySet { keys: self.keys[start..end].to_vec() }
    }
}

impl FromIterator<String> for KeySet {
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Self {
        KeySet::from_iter(iter)
    }
}

impl<'a> FromIterator<&'a str> for KeySet {
    fn from_iter<I: IntoIterator<Item = &'a str>>(iter: I) -> Self {
        KeySet::from_iter(iter.into_iter().map(String::from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(items: &[&str]) -> KeySet {
        items.iter().copied().collect()
    }

    #[test]
    fn from_iter_sorts_and_dedups() {
        let k = ks(&["b", "a", "b", "c", "a"]);
        assert_eq!(k.as_slice(), &["a", "b", "c"]);
    }

    #[test]
    fn lookup_and_contains() {
        let k = ks(&["alpha", "beta", "gamma"]);
        assert_eq!(k.index_of("beta"), Some(1));
        assert!(k.contains("gamma"));
        assert!(!k.contains("delta"));
        assert_eq!(k.key(0), "alpha");
    }

    #[test]
    fn intersect_union_minus() {
        let a = ks(&["a", "b", "c", "d"]);
        let b = ks(&["b", "d", "e"]);
        assert_eq!(a.intersect(&b).as_slice(), &["b", "d"]);
        assert_eq!(a.union(&b).as_slice(), &["a", "b", "c", "d", "e"]);
        assert_eq!(a.minus(&b).as_slice(), &["a", "c"]);
        assert_eq!(b.minus(&a).as_slice(), &["e"]);
    }

    #[test]
    fn empty_set_algebra() {
        let a = ks(&["x"]);
        let e = KeySet::new();
        assert_eq!(a.intersect(&e), e);
        assert_eq!(a.union(&e), a);
        assert_eq!(a.minus(&e), a);
        assert_eq!(e.minus(&a), e);
    }

    #[test]
    fn overlap_fraction_basics() {
        let a = ks(&["a", "b", "c", "d"]);
        let b = ks(&["b", "d", "e"]);
        assert_eq!(a.overlap_fraction(&b), Some(0.5));
        assert_eq!(KeySet::new().overlap_fraction(&a), None);
        assert_eq!(a.overlap_fraction(&KeySet::new()), Some(0.0));
    }

    #[test]
    fn prefix_selection() {
        let k = ks(&["10.0.0.1", "10.0.0.2", "10.1.0.1", "192.168.0.1"]);
        assert_eq!(k.with_prefix("10.0.").len(), 2);
        assert_eq!(k.with_prefix("10.").len(), 3);
        assert_eq!(k.with_prefix("172.").len(), 0);
        assert_eq!(k.with_prefix("").len(), 4);
    }

    #[test]
    fn prefix_at_boundaries() {
        let k = ks(&["aa", "ab", "b"]);
        assert_eq!(k.with_prefix("a").as_slice(), &["aa", "ab"]);
        assert_eq!(k.with_prefix("b").as_slice(), &["b"]);
    }
}
