//! Fig 7: best-fit modified-Cauchy α as a function of source packets
//! (the paper's headline: α ≈ 1 is typical).

use criterion::{criterion_group, criterion_main, Criterion};
use obscor_bench::{bench_nv, fixture};
use obscor_core::fitscan::{alpha_by_degree, fit_curves};
use obscor_core::temporal::temporal_curves;
use obscor_core::AnalysisConfig;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(bench_nv(), 42);
    let config = AnalysisConfig::default();
    let curves: Vec<_> = f
        .degrees
        .iter()
        .flat_map(|wd| temporal_curves(wd, &f.monthly_sources, config.min_bin_sources))
        .collect();
    let fits = fit_curves(&curves, &config);
    let series = alpha_by_degree(&fits);

    eprintln!("\n=== FIG 7 (regenerated) ===");
    eprintln!("  d        mean alpha");
    for (d, alpha) in &series {
        eprintln!("  2^{:<6} {:>9.2}", (*d as f64).log2() as u32, alpha);
    }
    let grand_mean: f64 =
        series.iter().map(|(_, a)| a).sum::<f64>() / series.len().max(1) as f64;
    eprintln!("grand mean alpha = {grand_mean:.2} (paper: typically ~1)");

    c.bench_function("fig7/alpha_by_degree", |b| {
        b.iter(|| black_box(alpha_by_degree(&fits)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
