//! Integration: the scale-covariance rules of DESIGN.md §5 and strict
//! determinism of the whole stack.

use obscor::core::{pipeline, AnalysisConfig};
use obscor::netmodel::Scenario;
use obscor::telescope::capture_window;

#[test]
fn knee_moves_with_sqrt_nv() {
    let small = Scenario::paper_scaled(1 << 14, 5);
    let large = Scenario::paper_scaled(1 << 16, 5);
    assert_eq!(small.bright_log2(), 7.0);
    assert_eq!(large.bright_log2(), 8.0);
    assert_eq!(small.population.config.brightness_max * 2, large.population.config.brightness_max);
}

#[test]
fn window_source_counts_grow_with_nv() {
    let small = Scenario::paper_scaled(1 << 14, 6);
    let large = Scenario::paper_scaled(1 << 16, 6);
    let count = |s: &Scenario| capture_window(s, &s.caida_windows[0]).unique_sources();
    let (cs, cl) = (count(&small), count(&large));
    assert!(
        cl > cs,
        "sources should grow with N_V: {cs} at 2^14 vs {cl} at 2^16"
    );
}

#[test]
fn full_pipeline_is_deterministic() {
    let s = Scenario::paper_scaled(1 << 14, 7);
    let a = pipeline::run(&s, &AnalysisConfig::fast());
    let b = pipeline::run(&s, &AnalysisConfig::fast());
    assert_eq!(a.curves, b.curves);
    assert_eq!(a.greynoise_inventory, b.greynoise_inventory);
    assert_eq!(a.render_all(), b.render_all());
}

#[test]
fn different_seeds_give_different_worlds_same_physics() {
    let a = pipeline::run(&Scenario::paper_scaled(1 << 14, 100), &AnalysisConfig::fast());
    let b = pipeline::run(&Scenario::paper_scaled(1 << 14, 200), &AnalysisConfig::fast());
    // Different realizations...
    assert_ne!(a.greynoise_inventory, b.greynoise_inventory);
    // ...same structural physics: both see the bright coeval plateau.
    for analysis in [&a, &b] {
        let bright: Vec<f64> = analysis
            .peaks
            .iter()
            .flat_map(|p| p.points.iter())
            .filter(|p| (p.d as f64).log2() >= analysis.bright_log2 && p.n_sources >= 5)
            .map(|p| p.fraction)
            .collect();
        if !bright.is_empty() {
            let mean = bright.iter().sum::<f64>() / bright.len() as f64;
            assert!(mean > 0.7, "bright plateau missing: {mean}");
        }
    }
}

#[test]
fn report_renders_all_sections_at_any_scale() {
    let s = Scenario::paper_scaled(1 << 13, 3);
    let a = pipeline::run(&s, &AnalysisConfig::fast());
    let all = a.render_all();
    for header in [
        "TABLE I",
        "TABLE II",
        "FIG 2",
        "FIG 3",
        "FIG 4",
        "FIG 6",
        "FIG 7",
        "FIG 8",
        "CLASS STRUCTURE",
        "SUBNET STRUCTURE",
        "SCALING",
    ] {
        assert!(all.contains(header), "missing {header} at tiny scale");
    }
}
