//! Property-based tests for the honeyfarm's detection model.

use obscor_honeyfarm::DetectionModel;
use obscor_netmodel::{ActivityInterval, Source, SourceClass};
use obscor_pcap::Ip4;
use proptest::prelude::*;

fn source(brightness: f64, birth: f64, end: f64, revisit: f64) -> Source {
    Source {
        ip: Ip4(0x01020304),
        brightness,
        class: SourceClass::Scanner,
        interval: ActivityInterval::new(birth, end),
        revisit_prob: revisit,
    }
}

proptest! {
    /// Detection probabilities are always valid probabilities.
    #[test]
    fn probabilities_bounded(
        brightness in 1.0f64..1e9,
        birth in -30.0f64..30.0,
        lifetime in 0.0f64..30.0,
        month in 0usize..15,
        coverage in 0.1f64..20.0,
        bright_log2 in 1.0f64..20.0,
        revisit in 0.0f64..0.2,
    ) {
        let m = DetectionModel::new(bright_log2, 1.0);
        let s = source(brightness, birth, birth + lifetime, revisit);
        let (lo, hi) = (month as f64, month as f64 + 1.0);
        let p = m.monthly_probability(&s, lo, hi, coverage);
        prop_assert!((0.0..=1.0).contains(&p), "p = {p}");
    }

    /// Efficiency is monotone non-decreasing in brightness.
    #[test]
    fn efficiency_monotone(
        b1 in 1.0f64..1e6,
        factor in 1.0f64..100.0,
        bright_log2 in 1.0f64..20.0,
    ) {
        let m = DetectionModel::new(bright_log2, 1.0);
        prop_assert!(m.efficiency(b1 * factor) >= m.efficiency(b1));
    }

    /// Active months detect at least as well as inactive months (the
    /// revisit floor never exceeds the live efficiency).
    #[test]
    fn active_beats_inactive(
        brightness in 2.0f64..1e6,
        coverage in 0.5f64..5.0,
        revisit in 0.0f64..0.5,
    ) {
        let m = DetectionModel::new(10.0, 1.0);
        let active = source(brightness, 0.0, 15.0, revisit);
        let inactive = source(brightness, -10.0, -5.0, revisit);
        let pa = m.monthly_probability(&active, 7.0, 8.0, coverage);
        let pi = m.monthly_probability(&inactive, 7.0, 8.0, coverage);
        prop_assert!(pa >= pi, "active {pa} < inactive {pi}");
    }

    /// More coverage never reduces detection.
    #[test]
    fn coverage_monotone(
        brightness in 1.0f64..1e6,
        c1 in 0.1f64..5.0,
        extra in 1.0f64..5.0,
    ) {
        let m = DetectionModel::new(10.0, 1.0);
        let s = source(brightness, 0.0, 15.0, 0.03);
        let p1 = m.monthly_probability(&s, 3.0, 4.0, c1);
        let p2 = m.monthly_probability(&s, 3.0, 4.0, c1 * extra);
        prop_assert!(p2 >= p1 - 1e-12);
    }
}
