//! Compressed bitmap substrate for correlation sets.
//!
//! A [`BitSet`] is a roaring-style hybrid set over `u32` keys: the key
//! space is cut into 2^16-key chunks addressed by the high 16 bits, and
//! each non-empty chunk stores its low-16 residues in whichever of three
//! container forms is cheapest for its density (sorted array, packed
//! 1024-word bitmap, or run intervals — see [`container`]). On dense
//! chunks, intersection and overlap counting become word-parallel
//! `AND` + popcount over `u64` words; on sparse chunks they stay the
//! merge/gallop the rest of the repo's `NumKeySet` uses, so the hybrid
//! never loses to either pure form.
//!
//! [`MonthMatrix`] (in [`matrix`]) layers a month×source membership
//! matrix on the same containers so the temporal-curve analysis counts a
//! bin's overlap with **all** months in one sweep over the bin's chunks.
//!
//! # Determinism
//!
//! Every count is an exact integer no matter which container forms meet;
//! [`BitSet::overlap_fraction`] divides the same two integers as
//! `NumKeySet::overlap_fraction`, so the resulting `f64` is bit-identical
//! to the sorted-vector path (and, transitively, to the string oracle).
//! The differential suites in `tests/` and `crates/assoc/tests/` pin this.
//!
//! # Metrics (opt-in)
//!
//! Gated behind [`enable_bitset_metrics`] so the pinned default metrics
//! schema never changes (same contract as `telescope.ingest.*`):
//! `assoc.bitset.containers_{array,bitmap,runs}_total`,
//! `assoc.bitset.{promotions,demotions}_total`, and
//! `assoc.bitset.words_scanned_total`, all pinned by
//! `tests/metrics_optin.rs`.

mod container;
mod matrix;

pub use matrix::MonthMatrix;

use crate::keys::NumKeySet;
use container::Container;
use std::sync::atomic::{AtomicBool, Ordering};

static BITSET_METRICS_ENABLED: AtomicBool = AtomicBool::new(false);

/// Opt in to `assoc.bitset.*` metrics emission for this process.
///
/// Off by default so the pinned default metrics schema never changes.
pub fn enable_bitset_metrics() {
    BITSET_METRICS_ENABLED.store(true, Ordering::Relaxed); // ordering: set-once enable flag; callers tolerate a stale false
}

/// Whether [`enable_bitset_metrics`] has been called.
pub fn bitset_metrics_enabled() -> bool {
    BITSET_METRICS_ENABLED.load(Ordering::Relaxed) // ordering: enable-flag read; staleness only delays metric emission
}

/// Internal metric sinks, no-ops until [`enable_bitset_metrics`].
pub(crate) mod metrics {
    /// Physical container form, for the per-kind construction counters.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub(crate) enum Kind {
        Array,
        Bitmap,
        Runs,
    }

    pub(crate) fn container_built(kind: Kind) {
        if super::bitset_metrics_enabled() {
            let name = match kind {
                Kind::Array => "assoc.bitset.containers_array_total",
                Kind::Bitmap => "assoc.bitset.containers_bitmap_total",
                Kind::Runs => "assoc.bitset.containers_runs_total",
            };
            obscor_obs::counter(name).inc();
        }
    }

    pub(crate) fn promotion() {
        if super::bitset_metrics_enabled() {
            obscor_obs::counter("assoc.bitset.promotions_total").inc();
        }
    }

    pub(crate) fn demotion() {
        if super::bitset_metrics_enabled() {
            obscor_obs::counter("assoc.bitset.demotions_total").inc();
        }
    }

    pub(crate) fn words_scanned(n: u64) {
        if super::bitset_metrics_enabled() {
            obscor_obs::counter("assoc.bitset.words_scanned_total").add(n);
        }
    }
}

/// Split a key into its (chunk, residue) halves.
#[inline]
fn split(key: u32) -> (u16, u16) {
    ((key >> 16) as u16, (key & 0xFFFF) as u16)
}

/// Rejoin a (chunk, residue) pair into the full key.
#[inline]
fn join(hi: u16, lo: u16) -> u32 {
    (u32::from(hi) << 16) | u32::from(lo)
}

/// A roaring-style compressed set of `u32` keys.
///
/// Semantically identical to [`NumKeySet`] — same keys, same counts, same
/// overlap fractions bit-for-bit — but with density-adaptive physical
/// containers that make dense-set intersection word-parallel.
#[derive(Clone, Debug, Default)]
pub struct BitSet {
    /// Non-empty chunks in strictly increasing `hi` order.
    chunks: Vec<(u16, Container)>,
}

impl BitSet {
    /// The empty set.
    pub fn new() -> Self {
        Self { chunks: Vec::new() }
    }

    /// Build from any iterator of keys; sorts and deduplicates.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut keys: Vec<u32> = iter.into_iter().collect();
        keys.sort_unstable();
        keys.dedup();
        Self::from_sorted_unique(&keys)
    }

    /// Build from keys known to be sorted and unique (checked in debug).
    pub fn from_sorted_unique(keys: &[u32]) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be sorted unique");
        let mut chunks: Vec<(u16, Container)> = Vec::new();
        let mut lows: Vec<u16> = Vec::new();
        let mut i = 0usize;
        while i < keys.len() {
            let (hi, _) = split(keys[i]);
            lows.clear();
            while i < keys.len() {
                let (h, lo) = split(keys[i]);
                if h != hi {
                    break;
                }
                lows.push(lo);
                i += 1;
            }
            let mut c = Container::from_sorted(&lows);
            c.optimize();
            chunks.push((hi, c));
        }
        Self { chunks }
    }

    /// Intern a [`NumKeySet`] (already sorted unique).
    pub fn from_num_key_set(ks: &NumKeySet) -> Self {
        Self::from_sorted_unique(ks.as_slice())
    }

    /// Render back to the sorted-vector domain.
    pub fn to_num_key_set(&self) -> NumKeySet {
        let mut keys = Vec::with_capacity(self.len());
        for (hi, c) in &self.chunks {
            c.for_each_key(|lo| keys.push(join(*hi, lo)));
        }
        NumKeySet::from_sorted_unique(keys)
    }

    /// Number of keys.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|(_, c)| c.card()).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, key: u32) -> bool {
        let (hi, lo) = split(key);
        match self.chunks.binary_search_by_key(&hi, |&(h, _)| h) {
            Ok(i) => self.chunks[i].1.contains(lo),
            Err(_) => false,
        }
    }

    /// Insert a key; returns whether it was new. Containers promote
    /// array → bitmap across [`container::ARRAY_MAX`] with hysteresis.
    pub fn insert(&mut self, key: u32) -> bool {
        let (hi, lo) = split(key);
        match self.chunks.binary_search_by_key(&hi, |&(h, _)| h) {
            Ok(i) => self.chunks[i].1.insert(lo),
            Err(i) => {
                self.chunks.insert(i, (hi, Container::from_sorted(&[lo])));
                true
            }
        }
    }

    /// Remove a key; returns whether it was present. Dense containers
    /// demote back to arrays below [`container::BITMAP_MIN`].
    pub fn remove(&mut self, key: u32) -> bool {
        let (hi, lo) = split(key);
        match self.chunks.binary_search_by_key(&hi, |&(h, _)| h) {
            Ok(i) => {
                let removed = self.chunks[i].1.remove(lo);
                if removed && self.chunks[i].1.card() == 0 {
                    self.chunks.remove(i);
                }
                removed
            }
            Err(_) => false,
        }
    }

    /// Re-pick the cheapest container form for every chunk (discovers run
    /// structure the mutation path never creates).
    pub fn optimize(&mut self) {
        for (_, c) in &mut self.chunks {
            c.optimize();
        }
    }

    /// Iterate over keys in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.chunks.iter().flat_map(|(hi, c)| {
            let hi = *hi;
            c.to_vec().into_iter().map(move |lo| join(hi, lo))
        })
    }

    /// `|self ∩ other|` without materializing the intersection — the
    /// correlation hot path. Chunks merge-join on the high half; matched
    /// chunks count word-parallel (bitmap forms) or by merge/interval
    /// arithmetic (sparse forms).
    pub fn overlap_count(&self, other: &BitSet) -> usize {
        let (mut i, mut j) = (0, 0);
        let mut count = 0usize;
        while i < self.chunks.len() && j < other.chunks.len() {
            match self.chunks[i].0.cmp(&other.chunks[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += self.chunks[i].1.overlap_count(&other.chunks[j].1);
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }

    /// `self ∩ other` as a new set.
    pub fn intersect(&self, other: &BitSet) -> BitSet {
        let (mut i, mut j) = (0, 0);
        let mut chunks = Vec::new();
        while i < self.chunks.len() && j < other.chunks.len() {
            match self.chunks[i].0.cmp(&other.chunks[j].0) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    if let Some(c) = self.chunks[i].1.intersect(&other.chunks[j].1) {
                        chunks.push((self.chunks[i].0, c));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        BitSet { chunks }
    }

    /// `self ∪ other` as a new set.
    pub fn union(&self, other: &BitSet) -> BitSet {
        let (mut i, mut j) = (0, 0);
        let mut chunks = Vec::new();
        loop {
            match (self.chunks.get(i), other.chunks.get(j)) {
                (Some((ha, ca)), Some((hb, cb))) => match ha.cmp(hb) {
                    std::cmp::Ordering::Less => {
                        chunks.push((*ha, ca.clone()));
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        chunks.push((*hb, cb.clone()));
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        chunks.push((*ha, ca.union(cb)));
                        i += 1;
                        j += 1;
                    }
                },
                (Some((ha, ca)), None) => {
                    chunks.push((*ha, ca.clone()));
                    i += 1;
                }
                (None, Some((hb, cb))) => {
                    chunks.push((*hb, cb.clone()));
                    j += 1;
                }
                (None, None) => break,
            }
        }
        BitSet { chunks }
    }

    /// Number of keys strictly below `key` — the positional index a
    /// sorted vector would give, without the vector.
    pub fn rank(&self, key: u32) -> usize {
        let (hi, lo) = split(key);
        let mut count = 0usize;
        for (h, c) in &self.chunks {
            match h.cmp(&hi) {
                std::cmp::Ordering::Less => count += c.card(),
                std::cmp::Ordering::Equal => {
                    count += c.rank(lo);
                    break;
                }
                std::cmp::Ordering::Greater => break,
            }
        }
        count
    }

    /// The `i`-th smallest key (0-based), if `i < len`.
    pub fn select(&self, i: usize) -> Option<u32> {
        let mut remaining = i;
        for (hi, c) in &self.chunks {
            let card = c.card();
            if remaining < card {
                return c.select(remaining).map(|lo| join(*hi, lo));
            }
            remaining -= card;
        }
        None
    }

    /// The fraction of `self`'s keys also present in `other` — the
    /// paper's correlation measure. `None` for an empty `self`.
    /// Bit-identical to [`NumKeySet::overlap_fraction`]: same two integer
    /// operands, same single `f64` division.
    pub fn overlap_fraction(&self, other: &BitSet) -> Option<f64> {
        if self.is_empty() {
            return None;
        }
        Some(self.overlap_count(other) as f64 / self.len() as f64)
    }

    /// Container census `(arrays, bitmaps, runs)` — used by benches and
    /// the metrics tests to confirm density-driven form selection.
    pub fn container_census(&self) -> (usize, usize, usize) {
        let mut census = (0usize, 0usize, 0usize);
        for (_, c) in &self.chunks {
            match c.kind() {
                metrics::Kind::Array => census.0 += 1,
                metrics::Kind::Bitmap => census.1 += 1,
                metrics::Kind::Runs => census.2 += 1,
            }
        }
        census
    }

    /// Internal consistency check: chunk keys strictly increasing, no
    /// empty chunks, and every container upholding its form invariants.
    pub fn check_invariants(&self) -> Result<(), String> {
        for w in self.chunks.windows(2) {
            if w[0].0 >= w[1].0 {
                return Err(format!("chunks not strictly increasing at {} >= {}", w[0].0, w[1].0));
            }
        }
        for (hi, c) in &self.chunks {
            if c.card() == 0 {
                return Err(format!("empty container retained for chunk {hi}"));
            }
            c.check_invariants().map_err(|e| format!("chunk {hi}: {e}"))?;
        }
        Ok(())
    }

    /// Chunk view for [`MonthMatrix`] construction and probes.
    pub(crate) fn chunks(&self) -> &[(u16, Container)] {
        &self.chunks
    }
}

impl FromIterator<u32> for BitSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        BitSet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests;
