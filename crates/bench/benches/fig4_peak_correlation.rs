//! Fig 4: coeval CAIDA∩GreyNoise fraction per log2 degree bin, with the
//! `log2(d)/log2(sqrt(N_V))` law alongside.

use criterion::{criterion_group, criterion_main, Criterion};
use obscor_bench::{bench_nv, fixture};
use obscor_core::peak::peak_correlation;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fixture(bench_nv(), 42);
    let bright_log2 = f.scenario.bright_log2();

    eprintln!("\n=== FIG 4 (regenerated) ===");
    eprintln!("knee at sqrt(N_V) = 2^{bright_log2:.1}");
    for wd in &f.degrees {
        let peak = peak_correlation(wd, &f.monthly_sources[wd.month], bright_log2, 10);
        eprintln!("window {} (month {}):", wd.label, wd.month);
        eprintln!("  d        n        measured  law");
        for p in &peak.points {
            eprintln!(
                "  2^{:<6} {:>7} {:>9.3} {:>8.3}",
                p.bin, p.n_sources, p.fraction, p.empirical_law
            );
        }
    }

    let wd = &f.degrees[0];
    let gn = &f.monthly_sources[wd.month];
    let mut g = c.benchmark_group("fig4");
    g.sample_size(30);
    g.bench_function("bin_key_sets", |b| b.iter(|| black_box(wd.bin_key_sets(10))));
    g.bench_function("peak_correlation", |b| {
        b.iter(|| black_box(peak_correlation(wd, gn, bright_log2, 10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
